#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "core/serial_match.hpp"
#include "helpers.hpp"
#include "parallel/match_count.hpp"
#include "regex/parser.hpp"
#include "workloads/suite.hpp"

namespace rispar {
namespace {

TEST(Streaming, EmptyStreamDecidedByInitialFinality) {
  const QueryOptions options{.variant = Variant::kRid, .chunks = 4};
  const Engine star(Pattern::compile("a*"), {.threads = 2});
  const Engine plus(Pattern::compile("a+"), {.threads = 2});
  EXPECT_TRUE(star.stream(options).accepted());
  EXPECT_FALSE(plus.stream(options).accepted());
}

TEST(Streaming, SingleWindowEqualsOneShot) {
  const Engine engine(Pattern::from_nfa(testing::fig1_nfa()), {.threads = 4});
  StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 2});
  const auto input = testing::fig1_string();
  stream.feed(std::span<const Symbol>(input));
  EXPECT_TRUE(stream.accepted());
  EXPECT_EQ(stream.windows(), 1u);
}

TEST(Streaming, EmptyWindowIsANoop) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
  StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 2});
  stream.feed(std::span<const Symbol>{});
  EXPECT_TRUE(stream.accepted());  // still the empty string
  EXPECT_EQ(stream.windows(), 0u);
}

TEST(Streaming, DeadStreamShortCircuits) {
  const Engine engine(Pattern::compile("a+"), {.threads = 2});
  for (const Variant variant : {Variant::kDfa, Variant::kNfa, Variant::kRid,
                                Variant::kSfa}) {
    StreamSession stream = engine.stream({.variant = variant, .chunks = 2});
    // An unmapped symbol kills every run.
    const std::vector<Symbol> poison{SymbolMap::kUnmapped};
    stream.feed(std::span<const Symbol>(poison));
    EXPECT_TRUE(stream.dead()) << variant_name(variant);
    const std::vector<Symbol> more{0, 0};
    stream.feed(std::span<const Symbol>(more));
    EXPECT_FALSE(stream.accepted()) << variant_name(variant);
  }
}

TEST(Streaming, ResetStartsOver) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
  StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 2});
  stream.feed("a");  // not a member
  EXPECT_FALSE(stream.accepted());
  stream.reset();
  EXPECT_TRUE(stream.accepted());
  stream.feed("ab");
  EXPECT_TRUE(stream.accepted());
}

class StreamingProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The window-segmentation equivalence property: feeding a text in any
// segmentation yields the same decision as the one-shot recognizer, for
// every variant's streaming session.
TEST_P(StreamingProperty, AnySegmentationMatchesOneShotOracle) {
  Prng prng(GetParam());
  RandomNfaConfig config;
  config.num_states = 6 + static_cast<std::int32_t>(prng.pick_index(20));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(3));
  const Nfa nfa = random_nfa(prng, config);
  const Engine engine(Pattern::from_nfa(nfa), {.threads = 4});
  const Dfa oracle = minimize_dfa(determinize(nfa));

  for (int trial = 0; trial < 10; ++trial) {
    const auto input =
        testing::random_word(prng, nfa.num_symbols(), 1 + prng.pick_index(120));
    StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 3});
    // Random segmentation into windows.
    std::size_t offset = 0;
    while (offset < input.size()) {
      const std::size_t take =
          std::min(input.size() - offset, 1 + prng.pick_index(30));
      stream.feed(std::span<const Symbol>(input.data() + offset, take));
      offset += take;
    }
    EXPECT_EQ(stream.accepted(), oracle.accepts(input)) << "trial " << trial;
  }
}

TEST_P(StreamingProperty, WorkloadTextsStreamCorrectly) {
  Prng prng(GetParam() ^ 0x5eed);
  const auto suite = benchmark_suite();
  const auto& spec = suite[GetParam() % suite.size()];
  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())), {.threads = 4});
  const std::string text = spec.text(20'000, prng);
  const auto input = engine.translate(text);

  StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 8});
  for (std::size_t offset = 0; offset < input.size(); offset += 4096)
    stream.feed(std::span<const Symbol>(
        input.data() + offset, std::min<std::size_t>(4096, input.size() - offset)));
  EXPECT_TRUE(stream.accepted()) << spec.name;
  EXPECT_GE(stream.transitions(), input.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

// ------------------------------------------------------------ streaming find
// (ISSUE 4): positions sessions emit Match records incrementally, with
// absolute byte offsets stable across arbitrary window boundaries; the
// one-shot find_all / serial scan are the oracles (the deep sweep lives in
// the differential fuzz driver, tests/test_fuzz.cpp).

std::vector<Match> stream_collect(const Engine& engine, std::string_view text,
                                  std::span<const std::size_t> cuts,
                                  const QueryOptions& options) {
  StreamSession stream = engine.stream(options);
  std::vector<Match> collected;
  std::size_t offset = 0;
  for (const std::size_t cut : cuts) {
    stream.feed(text.substr(offset, cut - offset));
    for (const Match& m : stream.take_matches()) collected.push_back(m);
    offset = cut;
  }
  stream.feed(text.substr(offset));
  for (const Match& m : stream.take_matches()) collected.push_back(m);
  return collected;
}

TEST(StreamFind, PositionedMatchesAcrossWindows) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  const QueryOptions options{.chunks = 2, .positions = true};
  // "xxabyab" split so the first occurrence straddles the window boundary.
  const std::vector<std::size_t> cuts{3};
  const std::vector<Match> matches = stream_collect(engine, "xxabyab", cuts, options);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (Match{0, 2, 4}));
  EXPECT_EQ(matches[1], (Match{0, 5, 7}));
  EXPECT_EQ(matches, engine.find_all("xxabyab"));
}

TEST(StreamFind, BeginMayPredateTheResidentWindow) {
  // "aaaa" for pattern "aa": every begin is the stream-global separator 0,
  // even for matches emitted from later windows — the carried separator
  // resolves begins into windows long gone.
  const Engine engine(Pattern::compile("aa"), {.threads = 2});
  StreamSession stream = engine.stream({.positions = true});
  stream.feed("aa");
  stream.feed("a");
  stream.feed("a");
  const std::vector<Match> matches = stream.take_matches();
  ASSERT_EQ(matches.size(), 3u);
  for (std::size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(matches[i].begin, 0u);
    EXPECT_EQ(matches[i].end, i + 2);
  }
  EXPECT_EQ(matches, engine.find_all("aaaa"));
}

TEST(StreamFind, SinkDrainsWithoutBuffering) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  StreamSession stream = engine.stream({.positions = true});
  std::vector<Match> seen;
  const MatchSink sink = [&](const Match& m) { seen.push_back(m); };
  stream.feed("abab", sink);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(stream.matches(), 2u);
  // Nothing accumulated in the session — the sink already drained it.
  EXPECT_TRUE(stream.take_matches().empty());
  // The two drain shapes interleave: buffered feeds buffer, sink feeds don't.
  stream.feed("ab");
  ASSERT_EQ(stream.take_matches().size(), 1u);
  EXPECT_EQ(stream.matches(), 3u);
}

TEST(StreamFind, MatchesKeepFlowingAfterTheDecisionDies) {
  // The decision (whole-stream membership of a+) dies on the first 'b';
  // occurrence search does not — substring matches outlive membership.
  const Engine engine(Pattern::compile("a+"), {.threads = 2});
  StreamSession stream = engine.stream({.positions = true});
  stream.feed("b");
  EXPECT_TRUE(stream.dead());
  EXPECT_FALSE(stream.accepted());
  stream.feed("aa");
  EXPECT_TRUE(stream.dead());  // still decision-dead
  const std::vector<Match> matches = stream.take_matches();
  ASSERT_EQ(matches.size(), 2u);  // "a" ending at 2, "aa"/"a" ending at 3
  EXPECT_EQ(matches[0].end, 2u);
  EXPECT_EQ(matches[1].end, 3u);
  EXPECT_EQ(matches, engine.find_all("baa"));
}

TEST(StreamFind, EveryVariantServesPositions) {
  const Engine engine(Pattern::compile("(ab|ba)"), {.threads = 2});
  const std::vector<Match> oracle = engine.find_all("xabbax");
  ASSERT_EQ(oracle.size(), 2u);
  for (const Variant variant :
       {Variant::kDfa, Variant::kNfa, Variant::kRid, Variant::kSfa}) {
    const std::vector<std::size_t> cuts{2, 3};
    const std::vector<Match> matches = stream_collect(
        engine, "xabbax", cuts, {.variant = variant, .chunks = 2, .positions = true});
    EXPECT_EQ(matches, oracle) << variant_name(variant);
  }
}

TEST(StreamFind, ResetForgetsFindStateAndPendingMatches) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  StreamSession stream = engine.stream({.positions = true});
  stream.feed("ab");
  EXPECT_EQ(stream.matches(), 1u);
  stream.reset();
  EXPECT_TRUE(stream.take_matches().empty());
  EXPECT_EQ(stream.matches(), 0u);
  EXPECT_EQ(stream.bytes_consumed(), 0u);
  // Offsets restart from zero after reset.
  stream.feed("xab");
  const std::vector<Match> matches = stream.take_matches();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (Match{0, 1, 3}));
}

// --------------------------------------------------------- session misuse
// (ISSUE 4 satellite): the reject-don't-ignore contract on streaming
// shapes, zero-length windows, and feeding past a rejecting state.

TEST(StreamMisuse, PagingKnobsRejectedOnStreamingShapes) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
  for (const Variant variant :
       {Variant::kDfa, Variant::kNfa, Variant::kRid, Variant::kSfa}) {
    // Per DeviceCaps: no streaming device honors offset/limit — an
    // unbounded stream has no total to page against.
    EXPECT_THROW(engine.stream({.variant = variant, .offset = 1}), QueryError)
        << variant_name(variant);
    EXPECT_THROW(engine.stream({.variant = variant, .limit = 5}), QueryError)
        << variant_name(variant);
    EXPECT_THROW(
        engine.stream({.variant = variant, .limit = 5, .positions = true}),
        QueryError)
        << variant_name(variant);
  }
  // The kernel-layer entry rejects too (direct callers, same contract).
  const Dfa& searcher = engine.searcher();
  FindCarry carry;
  const std::vector<Symbol> window{0};
  const MatchSink sink = [](const Match&) {};
  EXPECT_THROW(stream_find_feed(searcher, carry, window, engine.pool(),
                                {.limit = 2, .positions = true}, sink),
               QueryError);
}

TEST(StreamMisuse, PositionsRejectedWhereNotHonored) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  // One-shot decision shapes have no positions payload: REJECT via
  // DeviceCaps, never a silent ignore. find() honors it (implied knob).
  EXPECT_THROW(engine.recognize("ab", {.positions = true}), QueryError);
  EXPECT_THROW(engine.count("ab", {.positions = true}), QueryError);
  const std::vector<std::string_view> texts{"ab"};
  EXPECT_THROW(engine.match_all(texts, {.positions = true}), QueryError);
  EXPECT_NO_THROW(engine.find("ab", {.positions = true}));
}

TEST(StreamMisuse, DrainsRequireAPositionsSession) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  StreamSession stream = engine.stream();  // decision-only session
  stream.feed("ab");
  EXPECT_THROW((void)stream.take_matches(), QueryError);
  const MatchSink sink = [](const Match&) {};
  EXPECT_THROW(stream.feed("ab", sink), QueryError);
  EXPECT_FALSE(stream.finds_positions());
}

TEST(StreamMisuse, SymbolWindowsRejectedOnPositionsSessions) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  StreamSession stream = engine.stream({.positions = true});
  // The searcher translates raw bytes with its own map — device-symbol
  // windows cannot serve finding and REJECT instead of desyncing offsets.
  const std::vector<Symbol> window{0, 1};
  EXPECT_THROW(stream.feed(std::span<const Symbol>(window)), QueryError);
  // Byte windows still work on the same session afterwards.
  stream.feed("ab");
  EXPECT_EQ(stream.matches(), 1u);
}

TEST(StreamMisuse, ZeroLengthWindowsAreNoopsEverywhere) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  StreamSession stream = engine.stream({.chunks = 4, .positions = true});
  stream.feed("a");
  stream.feed("");
  stream.feed(std::string_view{});
  EXPECT_EQ(stream.windows(), 1u);
  EXPECT_EQ(stream.bytes_consumed(), 1u);
  stream.feed("b");
  const std::vector<Match> matches = stream.take_matches();
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (Match{0, 0, 2}));  // offsets unperturbed by no-ops
}

// Satellite of the governance layer: a feed that fails mid-window
// (deadline, cancellation, injected fault) leaves the carry inconsistent,
// so the session poisons — deterministically rejecting further feeds until
// reset() — while everything already consistent stays readable. See the
// StreamSession class comment in engine/engine.hpp.
TEST(StreamPoisoning, CancelMidSessionPoisonsButBufferedMatchesDrain) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  for (const Variant variant :
       {Variant::kDfa, Variant::kNfa, Variant::kRid, Variant::kSfa}) {
    CancelSource source;
    QueryOptions options{.variant = variant, .chunks = 2, .positions = true};
    options.cancel = source.token();
    StreamSession stream = engine.stream(options);

    stream.feed("abab");  // live token: the window runs and buffers matches
    EXPECT_FALSE(stream.poisoned()) << variant_name(variant);

    source.request_cancel();
    EXPECT_THROW(stream.feed("abab"), QueryCancelled) << variant_name(variant);
    EXPECT_TRUE(stream.poisoned()) << variant_name(variant);

    // Further feeds reject deterministically — ValidationError, not a
    // fresh governance trip — and repeatably.
    EXPECT_THROW(stream.feed("ab"), ValidationError) << variant_name(variant);
    EXPECT_THROW(stream.feed("ab"), ValidationError) << variant_name(variant);

    // What was consistent before the trip stays readable and drainable
    // (windows() may count the aborted attempt — the carry is mid-window,
    // which is exactly why the session poisons).
    (void)stream.accepted();
    (void)stream.dead();
    const std::vector<Match> drained = stream.take_matches();
    ASSERT_EQ(drained.size(), 2u) << variant_name(variant);
    EXPECT_EQ(drained[0].end, 2u);  // begin is the documented last-separator
    EXPECT_EQ(drained[1].end, 4u);  // over-approximation — assert ends only
  }  // destruction of every poisoned session is clean (ASan leg runs this)
}

TEST(StreamPoisoning, ResetClearsPoisonAndTheSessionIsReusable) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
  QueryOptions options{.chunks = 2};
  options.deadline = std::chrono::nanoseconds(1);  // trips every feed
  StreamSession stream = engine.stream(options);
  EXPECT_THROW(stream.feed("ab"), DeadlineExceeded);
  EXPECT_TRUE(stream.poisoned());
  EXPECT_THROW(stream.feed("ab"), ValidationError);

  stream.reset();
  EXPECT_FALSE(stream.poisoned());
  // The per-feed budget still trips, but as a FRESH governance error — the
  // reset demonstrably cleared the poison (the error type changed back).
  EXPECT_THROW(stream.feed("ab"), DeadlineExceeded);
  EXPECT_TRUE(stream.poisoned());
}

TEST(StreamPoisoning, ShapePreconditionRejectsNeverPoison) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  StreamSession stream = engine.stream();  // decision-only session
  EXPECT_THROW((void)stream.take_matches(), ValidationError);
  const std::vector<Symbol> window{0, 1};
  EXPECT_NO_THROW(stream.feed(std::span<const Symbol>(window)));

  StreamSession finder = engine.stream({.positions = true});
  EXPECT_THROW(finder.feed(std::span<const Symbol>(window)), ValidationError);
  EXPECT_FALSE(finder.poisoned());  // nothing ran — the carry is untouched
  finder.feed("ab");  // the session still works
  EXPECT_EQ(finder.matches(), 1u);
}

TEST(StreamMisuse, FeedingAfterARejectingStateStaysRejected) {
  const Engine engine(Pattern::compile("(ab)+"), {.threads = 2});
  for (const Variant variant :
       {Variant::kDfa, Variant::kNfa, Variant::kRid, Variant::kSfa}) {
    StreamSession stream = engine.stream({.variant = variant, .chunks = 2});
    stream.feed("ab");
    EXPECT_TRUE(stream.accepted()) << variant_name(variant);
    stream.feed("x");  // byte outside the pattern's classes: every run dies
    EXPECT_TRUE(stream.dead()) << variant_name(variant);
    // Feeding past the rejecting state is legal and stays rejected — no
    // crash, no resurrection, window accounting still advances.
    const std::uint64_t windows_before = stream.windows();
    stream.feed("abab");
    EXPECT_FALSE(stream.accepted()) << variant_name(variant);
    EXPECT_TRUE(stream.dead()) << variant_name(variant);
    EXPECT_EQ(stream.windows(), windows_before + 1) << variant_name(variant);
  }
}

}  // namespace
}  // namespace rispar
