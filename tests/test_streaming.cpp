#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "core/serial_match.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "workloads/suite.hpp"

namespace rispar {
namespace {

TEST(Streaming, EmptyStreamDecidedByInitialFinality) {
  const QueryOptions options{.variant = Variant::kRid, .chunks = 4};
  const Engine star(Pattern::compile("a*"), {.threads = 2});
  const Engine plus(Pattern::compile("a+"), {.threads = 2});
  EXPECT_TRUE(star.stream(options).accepted());
  EXPECT_FALSE(plus.stream(options).accepted());
}

TEST(Streaming, SingleWindowEqualsOneShot) {
  const Engine engine(Pattern::from_nfa(testing::fig1_nfa()), {.threads = 4});
  StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 2});
  const auto input = testing::fig1_string();
  stream.feed(std::span<const Symbol>(input));
  EXPECT_TRUE(stream.accepted());
  EXPECT_EQ(stream.windows(), 1u);
}

TEST(Streaming, EmptyWindowIsANoop) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
  StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 2});
  stream.feed(std::span<const Symbol>{});
  EXPECT_TRUE(stream.accepted());  // still the empty string
  EXPECT_EQ(stream.windows(), 0u);
}

TEST(Streaming, DeadStreamShortCircuits) {
  const Engine engine(Pattern::compile("a+"), {.threads = 2});
  for (const Variant variant : {Variant::kDfa, Variant::kNfa, Variant::kRid,
                                Variant::kSfa}) {
    StreamSession stream = engine.stream({.variant = variant, .chunks = 2});
    // An unmapped symbol kills every run.
    const std::vector<Symbol> poison{SymbolMap::kUnmapped};
    stream.feed(std::span<const Symbol>(poison));
    EXPECT_TRUE(stream.dead()) << variant_name(variant);
    const std::vector<Symbol> more{0, 0};
    stream.feed(std::span<const Symbol>(more));
    EXPECT_FALSE(stream.accepted()) << variant_name(variant);
  }
}

TEST(Streaming, ResetStartsOver) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
  StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 2});
  stream.feed("a");  // not a member
  EXPECT_FALSE(stream.accepted());
  stream.reset();
  EXPECT_TRUE(stream.accepted());
  stream.feed("ab");
  EXPECT_TRUE(stream.accepted());
}

class StreamingProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The window-segmentation equivalence property: feeding a text in any
// segmentation yields the same decision as the one-shot recognizer, for
// every variant's streaming session.
TEST_P(StreamingProperty, AnySegmentationMatchesOneShotOracle) {
  Prng prng(GetParam());
  RandomNfaConfig config;
  config.num_states = 6 + static_cast<std::int32_t>(prng.pick_index(20));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(3));
  const Nfa nfa = random_nfa(prng, config);
  const Engine engine(Pattern::from_nfa(nfa), {.threads = 4});
  const Dfa oracle = minimize_dfa(determinize(nfa));

  for (int trial = 0; trial < 10; ++trial) {
    const auto input =
        testing::random_word(prng, nfa.num_symbols(), 1 + prng.pick_index(120));
    StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 3});
    // Random segmentation into windows.
    std::size_t offset = 0;
    while (offset < input.size()) {
      const std::size_t take =
          std::min(input.size() - offset, 1 + prng.pick_index(30));
      stream.feed(std::span<const Symbol>(input.data() + offset, take));
      offset += take;
    }
    EXPECT_EQ(stream.accepted(), oracle.accepts(input)) << "trial " << trial;
  }
}

TEST_P(StreamingProperty, WorkloadTextsStreamCorrectly) {
  Prng prng(GetParam() ^ 0x5eed);
  const auto suite = benchmark_suite();
  const auto& spec = suite[GetParam() % suite.size()];
  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec.regex())), {.threads = 4});
  const std::string text = spec.text(20'000, prng);
  const auto input = engine.translate(text);

  StreamSession stream = engine.stream({.variant = Variant::kRid, .chunks = 8});
  for (std::size_t offset = 0; offset < input.size(); offset += 4096)
    stream.feed(std::span<const Symbol>(
        input.data() + offset, std::min<std::size_t>(4096, input.size() - offset)));
  EXPECT_TRUE(stream.accepted()) << spec.name;
  EXPECT_GE(stream.transitions(), input.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingProperty, ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace rispar
