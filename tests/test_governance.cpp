// Deadlines, cooperative cancellation and pool admission control
// (util/governance.hpp, the QueryOptions::{deadline, cancel} plumbing and
// ThreadPool's PoolAdmission) — the robustness layer of the query API.
//
// The determinism anchors: a pre-cancelled token and an already-elapsed
// deadline MUST trip at the first chunk-boundary poll (the top of every
// pool task), on every variant, kernel and query shape — no sleeps, no
// timing assumptions. The non-interference property: a governed run that
// completes returns bit-identical results to the ungoverned run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/pattern_set.hpp"
#include "helpers.hpp"
#include "parallel/thread_pool.hpp"
#include "util/prng.hpp"

namespace rispar {
namespace {

using namespace std::chrono_literals;

constexpr Variant kVariants[] = {Variant::kDfa, Variant::kNfa, Variant::kRid,
                                 Variant::kSfa};

/// Kernels a variant's device accepts (NFA/SFA run no deterministic kernel
/// and reject a non-default --kernel, so their row is just kFused).
std::vector<DetKernel> kernels_for(const Engine& engine, Variant variant) {
  if (engine.device(variant).capabilities().kernel_select)
    return {DetKernel::kFused, DetKernel::kSimd, DetKernel::kReference};
  return {DetKernel::kFused};
}

CancelToken cancelled_token() {
  CancelSource source;
  source.request_cancel();
  return source.token();
}

/// A governed options set that can never trip: a huge deadline plus a live
/// (valid, uncancelled) token. Forces every poll site onto its active path.
QueryOptions never_trips(QueryOptions options, const CancelSource& source) {
  options.deadline = std::chrono::hours(1);
  options.cancel = source.token();
  return options;
}

// ------------------------------------------------------------ determinism

TEST(Governance, PreCancelledTokenTripsEveryVariantAndKernel) {
  const Engine engine(Pattern::compile("(ab|ba)*"), {.threads = 2});
  const std::vector<Symbol> input = engine.translate(std::string(4096, 'a'));
  for (const Variant variant : kVariants) {
    for (const DetKernel kernel : kernels_for(engine, variant)) {
      QueryOptions options{.variant = variant, .chunks = 7, .kernel = kernel};
      options.cancel = cancelled_token();
      EXPECT_THROW(engine.recognize(input, options), QueryCancelled)
          << variant_name(variant) << "/" << kernel_name(kernel);
    }
  }
}

TEST(Governance, ElapsedDeadlineTripsEveryVariantAndKernel) {
  const Engine engine(Pattern::compile("(ab|ba)*"), {.threads = 2});
  const std::vector<Symbol> input = engine.translate(std::string(4096, 'a'));
  for (const Variant variant : kVariants) {
    for (const DetKernel kernel : kernels_for(engine, variant)) {
      QueryOptions options{.variant = variant, .chunks = 7, .kernel = kernel};
      options.deadline = 1ns;  // elapsed before the first chunk task polls
      EXPECT_THROW(engine.recognize(input, options), DeadlineExceeded)
          << variant_name(variant) << "/" << kernel_name(kernel);
    }
  }
}

TEST(Governance, CancellationBeatsDeadlineWhenBothTripped) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
  const std::vector<Symbol> input = engine.translate("abababab");
  QueryOptions options{.chunks = 2};
  options.deadline = 1ns;
  options.cancel = cancelled_token();
  EXPECT_THROW(engine.recognize(input, options), QueryCancelled);
}

TEST(Governance, DeadlineCarriesElapsedAndBudget) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
  const std::vector<Symbol> input = engine.translate("abababab");
  QueryOptions options{.chunks = 2};
  options.deadline = 1ns;
  try {
    engine.recognize(input, options);
    FAIL() << "deadline did not trip";
  } catch (const DeadlineExceeded& error) {
    EXPECT_EQ(error.budget(), 1ns);
    EXPECT_GE(error.elapsed(), error.budget());
    EXPECT_NE(std::string(error.what()).find("deadline"), std::string::npos);
  }
}

TEST(Governance, CountAndFindHonorGovernance) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  const std::string text(4096, 'a');
  QueryOptions by_deadline{.chunks = 5};
  by_deadline.deadline = 1ns;
  EXPECT_THROW(engine.count(text, by_deadline), DeadlineExceeded);
  EXPECT_THROW(engine.find(text, by_deadline), DeadlineExceeded);
  QueryOptions by_cancel{.chunks = 5};
  by_cancel.cancel = cancelled_token();
  EXPECT_THROW(engine.count(text, by_cancel), QueryCancelled);
  EXPECT_THROW(engine.find(text, by_cancel), QueryCancelled);
}

TEST(Governance, MatchAllAndPatternSetHonorGovernance) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
  const std::vector<std::string_view> texts{"abab", "ab", "ba"};
  QueryOptions options;
  options.cancel = cancelled_token();
  EXPECT_THROW(engine.match_all(texts, options), QueryCancelled);

  const PatternSet set = PatternSet::compile({"ab", "ba"}, {.threads = 2});
  EXPECT_THROW(set.find_all(texts, options), QueryCancelled);
}

TEST(Governance, StreamingFeedTripsPerFeed) {
  const Engine engine(Pattern::compile("(ab|ba)*"), {.threads = 2});
  for (const Variant variant : kVariants) {
    for (const DetKernel kernel : kernels_for(engine, variant)) {
      QueryOptions options{.variant = variant, .chunks = 3, .kernel = kernel};
      options.deadline = 1ns;
      StreamSession stream = engine.stream(options);
      EXPECT_THROW(stream.feed("abbaabba"), DeadlineExceeded)
          << variant_name(variant) << "/" << kernel_name(kernel);
    }
  }
}

// ------------------------------------------- exact-begin history bounding

TEST(Governance, MaxHistoryBytesTripsBeforeConsumingAndPoisons) {
  // The a|ba hazard pattern: its separator-purity certificate fails, so
  // kExact streaming retains history from the stream start — exactly the
  // unbounded growth QueryOptions::max_history_bytes exists to cap.
  const Engine engine(Pattern::compile("a|ba"), {.threads = 2});
  ASSERT_FALSE(engine.pattern().reverse_begins().separators_sound);
  QueryOptions options{.positions = true, .begin_mode = BeginMode::kExact};
  options.max_history_bytes = 64;
  StreamSession session = engine.stream(options);
  session.feed(std::string(48, 'b'));  // retained: 48 ≤ 64
  ASSERT_EQ(session.bytes_consumed(), 48u);
  try {
    session.feed(std::string(48, 'b'));  // peak would be 96 > 64
    FAIL() << "the history cap did not trip";
  } catch (const ResourceExhausted& error) {
    EXPECT_EQ(error.resource(), "exact-begin history");
    EXPECT_EQ(error.limit(), 64);
    EXPECT_EQ(error.observed(), 96);
  }
  // The trip consumed NOTHING and poisoned the session (standard stream
  // error semantics); reset() reuses it with the cap intact.
  EXPECT_EQ(session.bytes_consumed(), 48u);
  EXPECT_TRUE(session.poisoned());
  EXPECT_THROW(session.feed("b"), ValidationError);
  session.reset();
  EXPECT_FALSE(session.poisoned());
  session.feed(std::string(48, 'b'));
  EXPECT_THROW(session.feed(std::string(48, 'b')), ResourceExhausted);
}

TEST(Governance, MaxHistoryBytesZeroIsUnlimitedAndABoundThatFitsIsInert) {
  const Engine engine(Pattern::compile("a|ba"), {.threads = 2});
  std::string text;
  Prng prng(0x41aa);
  for (std::size_t i = 0; i < 4096; ++i) text.push_back("ab b"[prng.pick_index(4)]);

  const QueryOptions unlimited{.positions = true,
                               .begin_mode = BeginMode::kExact};  // cap 0
  QueryOptions bounded = unlimited;
  bounded.max_history_bytes = 1 << 20;  // far above peak retention

  StreamSession a = engine.stream(unlimited);
  StreamSession b = engine.stream(bounded);
  for (std::size_t offset = 0; offset < text.size(); offset += 97) {
    const std::string_view window = std::string_view(text).substr(offset, 97);
    a.feed(window);
    b.feed(window);
  }
  // Non-interference: a bound that never trips changes nothing, and both
  // agree with the one-shot exact find.
  const std::vector<Match> expected =
      engine.find_all(text, {.begin_mode = BeginMode::kExact});
  EXPECT_EQ(a.take_matches(), expected);
  EXPECT_EQ(b.take_matches(), expected);

  // One-shot shapes ignore the knob entirely (they retain no history).
  QueryOptions tiny{.begin_mode = BeginMode::kExact};
  tiny.max_history_bytes = 8;
  EXPECT_EQ(engine.find_all(text, tiny), expected);
}

TEST(Governance, MaxHistoryBytesGovernsMultiStreamSessions) {
  // One unsound-separator pattern in the fleet is enough: the shared cap
  // poisons the whole session when that pattern's tail would exceed it.
  const PatternSet set = PatternSet::compile({"ab", "a|ba"}, {.threads = 2});
  QueryOptions options{.begin_mode = BeginMode::kExact};
  options.max_history_bytes = 64;
  MultiStreamSession session = set.stream_find(options);
  session.feed(std::string(48, 'b'));
  EXPECT_THROW(session.feed(std::string(48, 'b')), ResourceExhausted);
  EXPECT_TRUE(session.poisoned());
  session.reset();
  EXPECT_FALSE(session.poisoned());
  session.feed(std::string(40, 'b'));
  EXPECT_EQ(session.bytes_consumed(), 40u);
}

// -------------------------------------------------------- non-interference

// A governed run that completes is indistinguishable from the ungoverned
// run: same decision, same transition counts, same positions. This is the
// fuzz-style sweep of the acceptance criteria — every variant × applicable
// kernel × one-shot and streaming, on random inputs long enough that the
// in-kernel stride polls actually execute (length ≫ kGovernorStride).
TEST(Governance, GovernedRunThatCompletesEqualsUngoverned) {
  const CancelSource live;  // never cancelled
  Prng prng(0xC0FFEEu);
  const Engine engine(Pattern::from_nfa(testing::fig1_nfa()), {.threads = 2});
  const std::vector<Symbol> input =
      testing::random_word(prng, 3, 3 * kGovernorStride + 17);

  for (const Variant variant : kVariants) {
    for (const DetKernel kernel : kernels_for(engine, variant)) {
      for (const std::size_t chunks : {1u, 2u, 7u}) {
        const QueryOptions plain{.variant = variant, .chunks = chunks,
                                 .kernel = kernel};
        const QueryOptions governed = never_trips(plain, live);
        const QueryResult expected = engine.recognize(input, plain);
        const QueryResult actual = engine.recognize(input, governed);
        EXPECT_EQ(expected.accepted, actual.accepted)
            << variant_name(variant) << "/" << kernel_name(kernel)
            << " chunks=" << chunks;
        EXPECT_EQ(expected.transitions, actual.transitions)
            << variant_name(variant) << "/" << kernel_name(kernel)
            << " chunks=" << chunks;

        // Streaming: same window segmentation, governed vs not.
        StreamSession a = engine.stream(plain);
        StreamSession b = engine.stream(governed);
        std::size_t pos = 0;
        while (pos < input.size()) {
          const std::size_t len =
              std::min<std::size_t>(1 + prng.pick_index(9000), input.size() - pos);
          const std::span<const Symbol> window(input.data() + pos, len);
          a.feed(window);
          b.feed(window);
          pos += len;
        }
        EXPECT_EQ(a.accepted(), b.accepted()) << variant_name(variant);
        EXPECT_EQ(a.transitions(), b.transitions()) << variant_name(variant);
      }
    }
  }
}

TEST(Governance, GovernedFindEqualsUngoverned) {
  const CancelSource live;
  Prng prng(0xF00Du);
  const Engine engine(Pattern::compile("(ab|ba)"), {.threads = 2});
  std::string text;
  text.reserve(2 * kGovernorStride);
  for (std::size_t i = 0; i < 2 * kGovernorStride; ++i)
    text.push_back("ab x"[prng.pick_index(4)]);

  for (const DetKernel kernel :
       {DetKernel::kFused, DetKernel::kSimd, DetKernel::kReference}) {
    const QueryOptions plain{.chunks = 7, .kernel = kernel};
    const QueryOptions governed = never_trips(plain, live);
    const QueryResult expected = engine.find(text, plain);
    const QueryResult actual = engine.find(text, governed);
    EXPECT_EQ(expected.matches, actual.matches) << kernel_name(kernel);
    ASSERT_EQ(expected.positions.size(), actual.positions.size())
        << kernel_name(kernel);
    for (std::size_t i = 0; i < expected.positions.size(); ++i) {
      EXPECT_EQ(expected.positions[i].begin, actual.positions[i].begin);
      EXPECT_EQ(expected.positions[i].end, actual.positions[i].end);
    }
  }

  // count() has no kernel knob (kCountingCaps) — compare it once, governed
  // vs not, on the default options.
  const QueryOptions plain{.chunks = 7};
  EXPECT_EQ(engine.count(text, plain).matches,
            engine.count(text, never_trips(plain, live)).matches);
}

// ------------------------------------------------------- admission control

/// Occupies a 1-worker pool plus the submitting helper thread with blocking
/// tasks so a batch sits in the injection queue deterministically: a batch
/// of 4 is enqueued whole, the worker claims one task and the submitter
/// claims another (both block on the gate), leaving exactly 2 queued.
struct OccupiedPool {
  explicit OccupiedPool(PoolAdmission admission)
      : pool(1, admission), gate_future(gate.get_future().share()) {
    submitter = std::thread([this] {
      pool.run(4, [this](std::size_t) {
        started.fetch_add(1);
        gate_future.wait();
      });
    });
    while (started.load() < 2) std::this_thread::yield();
  }

  ~OccupiedPool() {
    gate.set_value();  // release the blocked tasks
    submitter.join();
  }

  ThreadPool pool;
  std::atomic<int> started{0};
  std::promise<void> gate;
  std::shared_future<void> gate_future;
  std::thread submitter;
};

TEST(PoolAdmission, RejectPolicyThrowsResourceExhausted) {
  OccupiedPool occupied({.max_injected = 1, .policy = OverloadPolicy::kReject});
  EXPECT_EQ(occupied.pool.stats().queued, 2u);
  try {
    occupied.pool.run(1, [](std::size_t) {});
    FAIL() << "overloaded pool admitted the batch";
  } catch (const ResourceExhausted& error) {
    EXPECT_EQ(error.resource(), "pool admission");
    EXPECT_EQ(error.limit(), 1);
    EXPECT_EQ(error.observed(), 3);  // 2 queued + the batch of 1
  }
  EXPECT_EQ(occupied.pool.stats().rejected, 1u);
}

TEST(PoolAdmission, BlockPolicyTimesOutThenThrows) {
  OccupiedPool occupied({.max_injected = 1, .policy = OverloadPolicy::kBlock,
                         .block_timeout = 50ms});
  EXPECT_THROW(occupied.pool.run(1, [](std::size_t) {}), ResourceExhausted);
  EXPECT_EQ(occupied.pool.stats().rejected, 1u);
}

TEST(PoolAdmission, BlockPolicyHonorsGovernorWhileWaiting) {
  OccupiedPool occupied({.max_injected = 1, .policy = OverloadPolicy::kBlock});
  const QueryGovernor governor(20ms, CancelToken{});
  EXPECT_THROW(occupied.pool.run(1, [](std::size_t) {}, &governor),
               DeadlineExceeded);
}

TEST(PoolAdmission, BlockPolicyAdmitsOnceSpaceFrees) {
  std::atomic<bool> ran{false};
  {
    OccupiedPool occupied({.max_injected = 1, .policy = OverloadPolicy::kBlock});
    std::thread releaser([&] {
      std::this_thread::sleep_for(20ms);
      occupied.gate.set_value();
    });
    occupied.pool.run(1, [&](std::size_t) { ran = true; });  // blocks, then runs
    releaser.join();
    occupied.submitter.join();
    occupied.submitter = std::thread([] {});  // dtor gate already released
    occupied.gate = std::promise<void>();     // avoid double set_value in dtor
  }
  EXPECT_TRUE(ran.load());
}

TEST(PoolAdmission, PoolStaysUsableAfterRejection) {
  {
    OccupiedPool occupied({.max_injected = 1, .policy = OverloadPolicy::kReject});
    EXPECT_THROW(occupied.pool.run(1, [](std::size_t) {}), ResourceExhausted);
  }  // blocked batch released and joined
  ThreadPool pool(1, {.max_injected = 1, .policy = OverloadPolicy::kReject});
  std::atomic<int> hits{0};
  pool.run(8, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 8);
}

TEST(PoolAdmission, OversizedBatchAdmittedWhenQueueEmpty) {
  // All-or-nothing with the empty-queue overshoot: a batch larger than the
  // bound must still be admitted when nothing is queued, or a single big
  // query could never run at all.
  ThreadPool pool(2, {.max_injected = 4, .policy = OverloadPolicy::kReject});
  std::atomic<int> hits{0};
  pool.run(64, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 64);
}

TEST(PoolAdmission, NestedSubmissionsNeverDeadlockABoundedPool) {
  // Nesting under a tight bound must always make progress: worker-side
  // nested run() goes through the deques (never bounded — it is a
  // continuation of admitted work), and an external participant's nested
  // submission may wait for admission but the workers keep draining, so a
  // kBlock pool can never deadlock against its own nesting.
  ThreadPool pool(2, {.max_injected = 1, .policy = OverloadPolicy::kBlock});
  std::atomic<int> inner{0};
  pool.run(2, [&](std::size_t) {
    pool.run(16, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 32);
}

TEST(PoolAdmission, StatsCountersTrack) {
  ThreadPool pool(2);
  const PoolStats before = pool.stats();
  std::atomic<int> hits{0};
  pool.run(100, [&](std::size_t) { hits.fetch_add(1); });
  const PoolStats after = pool.stats();
  EXPECT_EQ(after.executed, before.executed + 100);
  EXPECT_EQ(after.queued, 0u);
  EXPECT_EQ(after.running, 0u);
  EXPECT_EQ(after.rejected, 0u);
}

TEST(PoolAdmission, EngineConfigThreadsAdmissionThrough) {
  // End to end: an Engine built over a bounded kReject pool still answers
  // queries (the owned pool's queue is empty between calls — admission only
  // bites under concurrent overload).
  const Engine engine(Pattern::compile("(ab)*"),
                      {.threads = 2,
                       .admission = {.max_injected = 2,
                                     .policy = OverloadPolicy::kReject}});
  EXPECT_EQ(engine.pool().admission().max_injected, 2u);
  EXPECT_TRUE(engine.recognize("abab").accepted);
}

}  // namespace
}  // namespace rispar
