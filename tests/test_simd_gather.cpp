// The gather backends behind DetKernel::kSimd (util/simd_gather.hpp): the
// AVX2 vpgatherdd path and the portable unrolled fallback must agree with
// each other and with a naive scalar loop for every table width, index
// pattern and block length (including the <8 and <4 tails), and the
// runtime dispatch must pick a backend consistent with util/cpuid.hpp.
#include "util/simd_gather.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "automata/packed_table.hpp"
#include "util/cpuid.hpp"
#include "util/prng.hpp"

namespace rispar {
namespace {

template <typename T>
void expect_backend_matches_naive(const simd::GatherOps& ops, Prng& prng) {
  // A column with every representable value class: state ids and the dead
  // sentinel, plus kGatherSlackEntries of sentinel tail slack exactly as
  // PackedTable::build lays it out.
  constexpr std::size_t kColumn = 300;
  std::vector<T> column(kColumn + kGatherSlackEntries, PackedDead<T>::value);
  for (std::size_t s = 0; s < kColumn; ++s)
    column[s] = prng.pick_index(4) == 0
                    ? PackedDead<T>::value
                    : static_cast<T>(prng.pick_index(kColumn < 250 ? kColumn : 250));

  const simd::GatherFn gather = simd::gather_fn<T>(ops);
  for (const std::size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 9u, 15u, 16u, 65u, 200u}) {
    std::vector<std::int32_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
      idx[i] = static_cast<std::int32_t>(prng.pick_index(kColumn));
    // The last entries are the over-read hazard; always include them.
    if (n > 0) idx[n - 1] = static_cast<std::int32_t>(kColumn - 1);
    if (n > 1) idx[0] = static_cast<std::int32_t>(kColumn - 2);

    std::vector<std::int32_t> out(n, -7);
    gather(column.data(), idx.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out[i], static_cast<std::int32_t>(column[static_cast<std::size_t>(
                            idx[i])]))
          << ops.backend << " n=" << n << " lane=" << i;
  }
}

template <typename T>
void expect_advance_span_matches_naive(const simd::GatherOps& ops, Prng& prng) {
  // A little 2-symbol table (num_states × 2) with ~1/4 dead entries, plus
  // the build-time tail slack.
  constexpr std::size_t kStates = 150;
  std::vector<T> entries(kStates * 2 + kGatherSlackEntries, PackedDead<T>::value);
  for (std::size_t e = 0; e < kStates * 2; ++e)
    entries[e] = prng.pick_index(4) == 0 ? PackedDead<T>::value
                                         : static_cast<T>(prng.pick_index(kStates));

  const simd::AdvanceSpanFn advance = simd::advance_span_fn<T>(ops);
  for (const std::size_t n : {2u, 4u, 7u, 8u, 9u, 16u, 17u, 64u, 130u}) {
    std::vector<std::int32_t> symbols(40);
    for (auto& symbol : symbols) symbol = static_cast<std::int32_t>(prng.pick_index(2));
    std::vector<std::int32_t> state(n);
    std::vector<std::uint32_t> origin(n);
    for (std::size_t i = 0; i < n; ++i) {
      state[i] = static_cast<std::int32_t>(prng.pick_index(kStates));
      origin[i] = static_cast<std::uint32_t>(1000 + i);
    }
    state[n - 1] = static_cast<std::int32_t>(kStates - 1);  // over-read hazard

    // The naive span loop this must equal lane for lane: advance+compact
    // per symbol, stop after the symbol that leaves <= 1 survivor.
    std::vector<std::int32_t> expected_state = state;
    std::vector<std::uint32_t> expected_origin = origin;
    std::uint64_t expected_transitions = 0;
    std::size_t expected_live = n;
    std::size_t expected_consumed = 0;
    while (expected_consumed < symbols.size() && expected_live > 1) {
      const T* col = entries.data() +
                     static_cast<std::size_t>(symbols[expected_consumed]) * kStates;
      std::size_t write = 0;
      for (std::size_t i = 0; i < expected_live; ++i) {
        const auto value = static_cast<std::int32_t>(
            col[static_cast<std::size_t>(expected_state[i])]);
        if (value == PackedWideDead<T>) continue;
        expected_state[write] = value;
        expected_origin[write] = expected_origin[i];
        ++write;
      }
      expected_transitions += write;
      expected_live = write;
      ++expected_consumed;
    }

    std::size_t live = n;
    std::uint64_t transitions = 0;
    const std::size_t consumed =
        advance(entries.data(), kStates, symbols.data(), symbols.size(),
                state.data(), origin.data(), live, transitions);
    ASSERT_EQ(consumed, expected_consumed) << ops.backend << " n=" << n;
    ASSERT_EQ(live, expected_live) << ops.backend << " n=" << n;
    ASSERT_EQ(transitions, expected_transitions) << ops.backend << " n=" << n;
    for (std::size_t i = 0; i < live; ++i) {
      ASSERT_EQ(state[i], expected_state[i]) << ops.backend << " n=" << n;
      ASSERT_EQ(origin[i], expected_origin[i]) << ops.backend << " n=" << n;
    }
  }
}

TEST(SimdGather, AdvanceSpanPortableMatchesNaive) {
  Prng prng(21);
  expect_advance_span_matches_naive<std::uint8_t>(simd::portable_gather_ops(), prng);
  expect_advance_span_matches_naive<std::uint16_t>(simd::portable_gather_ops(), prng);
  expect_advance_span_matches_naive<std::int32_t>(simd::portable_gather_ops(), prng);
}

TEST(SimdGather, AdvanceSpanAvx2MatchesNaiveWhenPresent) {
  if (!cpu_has_avx2() || simd::avx2_gather_ops() == nullptr)
    GTEST_SKIP() << "no AVX2 backend in this build/machine";
  Prng prng(22);
  expect_advance_span_matches_naive<std::uint8_t>(*simd::avx2_gather_ops(), prng);
  expect_advance_span_matches_naive<std::uint16_t>(*simd::avx2_gather_ops(), prng);
  expect_advance_span_matches_naive<std::int32_t>(*simd::avx2_gather_ops(), prng);
}

template <typename T>
void expect_in_place_gather_works(const simd::GatherOps& ops, Prng& prng) {
  // The convergent/find kernels gather with out == idx; every backend must
  // read a lane's index before writing its slot.
  constexpr std::size_t kColumn = 120;
  std::vector<T> column(kColumn + kGatherSlackEntries, PackedDead<T>::value);
  for (std::size_t s = 0; s < kColumn; ++s)
    column[s] = static_cast<T>(prng.pick_index(kColumn));
  const simd::GatherFn gather = simd::gather_fn<T>(ops);
  for (const std::size_t n : {1u, 7u, 8u, 23u, 64u}) {
    std::vector<std::int32_t> buffer(n);
    for (std::size_t i = 0; i < n; ++i)
      buffer[i] = static_cast<std::int32_t>(prng.pick_index(kColumn));
    const std::vector<std::int32_t> idx = buffer;
    gather(column.data(), buffer.data(), n, buffer.data());
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(buffer[i], static_cast<std::int32_t>(
                               column[static_cast<std::size_t>(idx[i])]))
          << ops.backend << " n=" << n << " lane=" << i;
  }
}

TEST(SimdGather, InPlaceGatherAllBackends) {
  Prng prng(31);
  expect_in_place_gather_works<std::uint8_t>(simd::portable_gather_ops(), prng);
  expect_in_place_gather_works<std::uint16_t>(simd::portable_gather_ops(), prng);
  expect_in_place_gather_works<std::int32_t>(simd::portable_gather_ops(), prng);
  if (cpu_has_avx2() && simd::avx2_gather_ops() != nullptr) {
    expect_in_place_gather_works<std::uint8_t>(*simd::avx2_gather_ops(), prng);
    expect_in_place_gather_works<std::uint16_t>(*simd::avx2_gather_ops(), prng);
    expect_in_place_gather_works<std::int32_t>(*simd::avx2_gather_ops(), prng);
  }
}

TEST(SimdGather, PortableMatchesNaiveAllWidths) {
  Prng prng(11);
  expect_backend_matches_naive<std::uint8_t>(simd::portable_gather_ops(), prng);
  expect_backend_matches_naive<std::uint16_t>(simd::portable_gather_ops(), prng);
  expect_backend_matches_naive<std::int32_t>(simd::portable_gather_ops(), prng);
}

TEST(SimdGather, Avx2MatchesNaiveAllWidthsWhenPresent) {
  if (!cpu_has_avx2() || simd::avx2_gather_ops() == nullptr)
    GTEST_SKIP() << "no AVX2 backend in this build/machine";
  Prng prng(12);
  expect_backend_matches_naive<std::uint8_t>(*simd::avx2_gather_ops(), prng);
  expect_backend_matches_naive<std::uint16_t>(*simd::avx2_gather_ops(), prng);
  expect_backend_matches_naive<std::int32_t>(*simd::avx2_gather_ops(), prng);
}

TEST(SimdGather, DispatchAgreesWithCpuDetection) {
  const simd::GatherOps& ops = simd::gather_ops();
  if (cpu_has_avx2() && simd::avx2_gather_ops() != nullptr) {
    EXPECT_STREQ(ops.backend, "avx2");
    EXPECT_EQ(&ops, simd::avx2_gather_ops());
  } else {
    EXPECT_STREQ(ops.backend, "portable");
    EXPECT_EQ(&ops, &simd::portable_gather_ops());
  }
  EXPECT_STREQ(simd::simd_backend_name(), ops.backend);
}

TEST(SimdGather, PackedTableCarriesGatherSlack) {
  // build() must append the sentinel slack the dword gathers rely on; the
  // last real entry of the last column is the one the AVX2 path over-reads
  // past.
  const std::vector<State> rows{0, 1, 1, kDeadState};  // 2 states × 2 symbols
  const PackedTable table = PackedTable::build(rows, 2, 2);
  ASSERT_EQ(table.width(), TableWidth::kU8);
  const std::uint8_t* data = table.data<std::uint8_t>();
  EXPECT_EQ(data[3], PackedDead<std::uint8_t>::value);  // packed [s=1][a=1]
  for (std::size_t pad = 0; pad < kGatherSlackEntries; ++pad)
    EXPECT_EQ(data[4 + pad], PackedDead<std::uint8_t>::value);
}

}  // namespace
}  // namespace rispar
