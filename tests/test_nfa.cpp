#include "automata/nfa.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace rispar {
namespace {

TEST(Nfa, AddStateGrows) {
  Nfa nfa = Nfa::with_identity_alphabet(2);
  EXPECT_EQ(nfa.num_states(), 0);
  const State s0 = nfa.add_state();
  const State s1 = nfa.add_state(true);
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(s1, 1);
  EXPECT_EQ(nfa.num_states(), 2);
  EXPECT_FALSE(nfa.is_final(s0));
  EXPECT_TRUE(nfa.is_final(s1));
}

TEST(Nfa, FinalFlagsSurviveGrowth) {
  Nfa nfa = Nfa::with_identity_alphabet(1);
  nfa.add_state(true);
  for (int i = 0; i < 100; ++i) nfa.add_state();
  EXPECT_TRUE(nfa.is_final(0));
  EXPECT_FALSE(nfa.is_final(50));
}

TEST(Nfa, EdgesSortedAndDeduplicated) {
  Nfa nfa = Nfa::with_identity_alphabet(3);
  for (int i = 0; i < 3; ++i) nfa.add_state();
  nfa.add_edge(0, 2, 1);
  nfa.add_edge(0, 0, 2);
  nfa.add_edge(0, 2, 1);  // duplicate
  nfa.add_edge(0, 0, 1);
  const auto edges = nfa.edges(0);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (NfaEdge{0, 1}));
  EXPECT_EQ(edges[1], (NfaEdge{0, 2}));
  EXPECT_EQ(edges[2], (NfaEdge{2, 1}));
  EXPECT_EQ(nfa.num_edges(), 3u);
}

TEST(Nfa, EdgeSliceBySymbol) {
  Nfa nfa = Nfa::with_identity_alphabet(3);
  for (int i = 0; i < 4; ++i) nfa.add_state();
  nfa.add_edge(0, 1, 1);
  nfa.add_edge(0, 1, 2);
  nfa.add_edge(0, 2, 3);
  const auto slice = nfa.edges(0, 1);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0].target, 1);
  EXPECT_EQ(slice[1].target, 2);
  EXPECT_TRUE(nfa.edges(0, 0).empty());
}

TEST(Nfa, EpsilonEdgesTracked) {
  Nfa nfa = Nfa::with_identity_alphabet(1);
  nfa.add_state();
  nfa.add_state();
  EXPECT_FALSE(nfa.has_epsilon());
  nfa.add_epsilon(0, 1);
  nfa.add_epsilon(0, 1);  // duplicate ignored
  EXPECT_TRUE(nfa.has_epsilon());
  EXPECT_EQ(nfa.num_epsilon_edges(), 1u);
  EXPECT_EQ(nfa.epsilon_edges(0).size(), 1u);
}

TEST(Nfa, MaxOutDegreeDetectsNondeterminism) {
  Nfa nfa = Nfa::with_identity_alphabet(2);
  for (int i = 0; i < 3; ++i) nfa.add_state();
  nfa.add_edge(0, 0, 1);
  EXPECT_EQ(nfa.max_out_degree(), 1);
  nfa.add_edge(0, 0, 2);
  EXPECT_EQ(nfa.max_out_degree(), 2);
}

TEST(Nfa, Fig1NfaShape) {
  const Nfa nfa = testing::fig1_nfa();
  EXPECT_EQ(nfa.num_states(), 3);
  EXPECT_EQ(nfa.num_symbols(), 3);
  EXPECT_EQ(nfa.initial(), 0);
  EXPECT_TRUE(nfa.is_final(2));
  EXPECT_FALSE(nfa.is_final(0));
  EXPECT_EQ(nfa.num_edges(), 8u);
  EXPECT_EQ(nfa.max_out_degree(), 2);  // ρ(1,a) and ρ(1,b) have two targets
}

TEST(Nfa, SetFinalToggles) {
  Nfa nfa = Nfa::with_identity_alphabet(1);
  nfa.add_state();
  nfa.set_final(0, true);
  EXPECT_TRUE(nfa.is_final(0));
  nfa.set_final(0, false);
  EXPECT_FALSE(nfa.is_final(0));
}

}  // namespace
}  // namespace rispar
