#include "parallel/match_count.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "workloads/suite.hpp"

namespace rispar {
namespace {

Dfa searcher(const std::string& pattern) {
  // Σ* p machine: final after every prefix ending an occurrence of p.
  return minimize_dfa(determinize(glushkov_nfa(parse_regex(".*" + pattern))));
}

QueryOptions counting(std::size_t chunks, bool convergence = false) {
  return QueryOptions{.chunks = chunks, .convergence = convergence};
}

TEST(MatchCount, SerialCountsOccurrences) {
  const Dfa dfa = searcher("ab");
  // "abab" contains occurrences ending at positions 2 and 4.
  EXPECT_EQ(count_matches_serial(dfa, dfa.symbols().translate("abab")).matches, 2u);
  EXPECT_EQ(count_matches_serial(dfa, dfa.symbols().translate("aaaa")).matches, 0u);
  EXPECT_EQ(count_matches_serial(dfa, dfa.symbols().translate("")).matches, 0u);
}

TEST(MatchCount, OverlappingOccurrences) {
  const Dfa dfa = searcher("aa");
  // "aaaa": occurrences end at 2, 3, 4 (overlaps counted).
  EXPECT_EQ(count_matches_serial(dfa, dfa.symbols().translate("aaaa")).matches, 3u);
}

TEST(MatchCount, ParallelEqualsSerialSmall) {
  const Dfa dfa = searcher("aba");
  ThreadPool pool(4);
  const auto input = dfa.symbols().translate("abababbababa");
  const QueryResult serial = count_matches_serial(dfa, input);
  for (const std::size_t chunks : {1u, 2u, 3u, 5u, 12u}) {
    for (const bool convergence : {false, true}) {
      const QueryResult parallel =
          count_matches(dfa, input, pool, counting(chunks, convergence));
      EXPECT_EQ(parallel.matches, serial.matches)
          << "chunks=" << chunks << " conv=" << convergence;
      EXPECT_FALSE(parallel.died);
    }
  }
}

TEST(MatchCount, UnsupportedKnobsRaiseQueryError) {
  const Dfa dfa = searcher("ab");
  ThreadPool pool(2);
  const auto input = dfa.symbols().translate("abab");
  QueryOptions bad = counting(2);
  bad.lookback = 8;
  EXPECT_THROW(count_matches(dfa, input, pool, bad), QueryError);
  bad = counting(2);
  bad.tree_join = true;
  EXPECT_THROW(count_matches(dfa, input, pool, bad), QueryError);
  bad = counting(2);
  bad.kernel = DetKernel::kReference;
  EXPECT_THROW(count_matches(dfa, input, pool, bad), QueryError);
}

TEST(MatchCount, ConvergenceSavesTransitionsOnTotalMachines) {
  // On a Σ*-context machine every speculative run survives, so merged runs
  // are pure savings; the counts must still agree exactly.
  const Dfa dfa = searcher("aa");
  ThreadPool pool(4);
  std::string text;
  for (int i = 0; i < 512; ++i) text += (i % 3 == 0) ? "aa" : "ab";
  const auto input = dfa.symbols().translate(text);
  const QueryResult independent = count_matches(dfa, input, pool, counting(8, false));
  const QueryResult convergent = count_matches(dfa, input, pool, counting(8, true));
  EXPECT_EQ(independent.matches, convergent.matches);
  EXPECT_EQ(independent.died, convergent.died);
  EXPECT_LT(convergent.transitions, independent.transitions);
  EXPECT_EQ(convergent.matches, count_matches_serial(dfa, input).matches);
}

TEST(MatchCount, DiedRunReportsPartialCount) {
  // A partial automaton (no Σ* wrap): "ab" recognizer dies on the 'b' at
  // the front.
  const Dfa dfa = minimize_dfa(determinize(glushkov_nfa(parse_regex("ab"))));
  ThreadPool pool(2);
  const auto input = dfa.symbols().translate("ba");
  const QueryResult serial = count_matches_serial(dfa, input);
  for (const bool convergence : {false, true}) {
    const QueryResult parallel =
        count_matches(dfa, input, pool, counting(2, convergence));
    EXPECT_TRUE(serial.died);
    EXPECT_TRUE(parallel.died) << "conv=" << convergence;
    EXPECT_EQ(parallel.matches, serial.matches);
  }
}

TEST(MatchCount, CountsTitlesInBibleText) {
  // Count <h3> opening tags in the bible workload — every section has one.
  const Dfa dfa = searcher("<h3>");
  ThreadPool pool(4);
  Prng prng(8);
  const std::string text = bible_workload().text(60'000, prng);
  const auto input = dfa.symbols().translate(text);
  const QueryResult counted = count_matches(dfa, input, pool, counting(16));
  // Independently count the substring occurrences.
  std::uint64_t expected = 0;
  for (std::size_t pos = text.find("<h3>"); pos != std::string::npos;
       pos = text.find("<h3>", pos + 1))
    ++expected;
  EXPECT_EQ(counted.matches, expected);
  EXPECT_GT(counted.matches, 0u);
}

class MatchCountProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The satellite property: parallel == serial counts on random machines,
// with run convergence ON and off, across random chunkings. On partial
// machines convergent groups die together; the per-start totals must still
// reconstruct exactly through the merge tree.
TEST_P(MatchCountProperty, ParallelEqualsSerialOnRandomMachines) {
  Prng prng(GetParam());
  ThreadPool pool(4);
  RandomNfaConfig config;
  config.num_states = 5 + static_cast<std::int32_t>(prng.pick_index(20));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(3));
  const Nfa nfa = random_nfa(prng, config);
  const Dfa dfa = minimize_dfa(determinize(nfa));
  for (int trial = 0; trial < 12; ++trial) {
    const auto input =
        testing::random_word(prng, dfa.num_symbols(), 1 + prng.pick_index(100));
    const QueryResult serial = count_matches_serial(dfa, input);
    const std::size_t chunks = 1 + prng.pick_index(9);
    for (const bool convergence : {false, true}) {
      const QueryResult parallel =
          count_matches(dfa, input, pool, counting(chunks, convergence));
      EXPECT_EQ(parallel.matches, serial.matches)
          << "chunks=" << chunks << " conv=" << convergence;
      EXPECT_EQ(parallel.died, serial.died)
          << "chunks=" << chunks << " conv=" << convergence;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchCountProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace rispar
