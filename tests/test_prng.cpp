#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace rispar {
namespace {

TEST(Prng, SameSeedSameSequence) {
  Prng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Prng, ZeroSeedIsUsable) {
  Prng prng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 64; ++i) values.insert(prng.next_u64());
  EXPECT_GT(values.size(), 60u);  // not stuck at a fixed point
}

TEST(Prng, NextBelowRespectsBound) {
  Prng prng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(prng.next_below(bound), bound);
  }
}

TEST(Prng, NextBelowOneIsAlwaysZero) {
  Prng prng(11);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(prng.next_below(1), 0u);
}

TEST(Prng, NextBelowCoversSmallRange) {
  Prng prng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(prng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, NextInClosedInterval) {
  Prng prng(17);
  for (int i = 0; i < 500; ++i) {
    const auto value = prng.next_in(-5, 5);
    EXPECT_GE(value, -5);
    EXPECT_LE(value, 5);
  }
}

TEST(Prng, NextDoubleInUnitInterval) {
  Prng prng(19);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double x = prng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 2000, 0.5, 0.05);  // crude uniformity check
}

TEST(Prng, NextBoolExtremes) {
  Prng prng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(prng.next_bool(0.0));
    EXPECT_TRUE(prng.next_bool(1.0));
  }
}

TEST(Prng, NextBoolFrequency) {
  Prng prng(29);
  int heads = 0;
  for (int i = 0; i < 4000; ++i) heads += prng.next_bool(0.25);
  EXPECT_NEAR(heads / 4000.0, 0.25, 0.05);
}

TEST(Prng, PermutationIsAPermutation) {
  Prng prng(31);
  for (const std::size_t n : {0u, 1u, 2u, 17u, 100u}) {
    auto perm = prng.permutation(n);
    ASSERT_EQ(perm.size(), n);
    std::sort(perm.begin(), perm.end());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(perm[i], i);
  }
}

TEST(Prng, PermutationIsShuffled) {
  Prng prng(37);
  const auto perm = prng.permutation(64);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) fixed += perm[i] == i;
  EXPECT_LT(fixed, 12u);  // expected ~1 fixed point
}

TEST(Prng, SplitProducesIndependentStream) {
  Prng parent(41);
  Prng child = parent.split();
  // The child must differ from a fresh copy of the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Prng, SplitmixScrambles) {
  std::uint64_t s1 = 1, s2 = 2;
  EXPECT_NE(splitmix64(s1), splitmix64(s2));
}

TEST(StableHash, DistinctStringsDistinctHashes) {
  EXPECT_NE(stable_hash("bible"), stable_hash("fasta"));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
  EXPECT_EQ(stable_hash("traffic"), stable_hash("traffic"));
}

class PrngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrngBoundSweep, MeanIsNearHalfBound) {
  const std::uint64_t bound = GetParam();
  Prng prng(bound);
  double sum = 0;
  const int reps = 4000;
  for (int i = 0; i < reps; ++i) sum += static_cast<double>(prng.next_below(bound));
  const double mean = sum / reps;
  const double expected = (static_cast<double>(bound) - 1) / 2;
  EXPECT_NEAR(mean, expected, static_cast<double>(bound) * 0.05 + 1);
}

INSTANTIATE_TEST_SUITE_P(Bounds, PrngBoundSweep,
                         ::testing::Values(2, 3, 10, 100, 12345, 1u << 20));

}  // namespace
}  // namespace rispar
