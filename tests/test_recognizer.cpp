#include "parallel/recognizer.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/thompson.hpp"
#include "core/serial_match.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

TEST(LanguageEngines, FromRegexBuildsConsistentAutomata) {
  const LanguageEngines engines = LanguageEngines::from_regex("(ab)*");
  EXPECT_FALSE(engines.nfa().has_epsilon());
  EXPECT_GE(engines.min_dfa().num_states(), 1);
  EXPECT_LE(engines.ridfa().initial_count(), engines.nfa().num_states());
}

TEST(LanguageEngines, FromNfaWithEpsilonGetsCleaned) {
  const Nfa thompson = thompson_nfa(parse_regex("(a|b)*abb"));
  const LanguageEngines engines = LanguageEngines::from_nfa(thompson);
  EXPECT_FALSE(engines.nfa().has_epsilon());
  EXPECT_TRUE(engines.accepts(engines.translate("abb")));
  EXPECT_FALSE(engines.accepts(engines.translate("ab")));
}

TEST(LanguageEngines, VariantNamesAreStable) {
  EXPECT_STREQ(variant_name(Variant::kDfa), "DFA");
  EXPECT_STREQ(variant_name(Variant::kNfa), "NFA");
  EXPECT_STREQ(variant_name(Variant::kRid), "RID");
}

TEST(LanguageEngines, RecognizeDispatchesAllVariants) {
  const LanguageEngines engines = LanguageEngines::from_regex("(ab)*");
  ThreadPool pool(4);
  const auto input = engines.translate("abababab");
  const DeviceOptions options{.chunks = 3, .convergence = false};
  for (const Variant variant : {Variant::kDfa, Variant::kNfa, Variant::kRid}) {
    const RecognitionStats stats = engines.recognize(variant, input, pool, options);
    EXPECT_TRUE(stats.accepted) << variant_name(variant);
  }
}

TEST(LanguageEngines, TranslateUsesSharedAlphabet) {
  const LanguageEngines engines = LanguageEngines::from_regex("[ab]c");
  const auto symbols = engines.translate("acz");
  EXPECT_EQ(symbols.size(), 3u);
  EXPECT_NE(symbols[0], symbols[1]);
  EXPECT_EQ(symbols[2], SymbolMap::kUnmapped);
}

TEST(LanguageEngines, InvalidRegexPropagates) {
  EXPECT_THROW(LanguageEngines::from_regex("(unclosed"), RegexError);
}

class EnginesAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnginesAgreement, ThreeVariantsAgreeOnText) {
  Prng prng(GetParam());
  RandomRegexConfig config;
  config.alphabet = "abc";
  config.target_size = 10;
  const RePtr re = random_regex(prng, config);
  LanguageEngines engines = LanguageEngines::from_nfa(glushkov_nfa(re));
  ThreadPool pool(4);
  const DeviceOptions options{.chunks = 5, .convergence = false};
  for (int trial = 0; trial < 10; ++trial) {
    std::string text;
    for (std::size_t i = 0; i < 1 + prng.pick_index(30); ++i)
      text.push_back("abc"[prng.pick_index(3)]);
    const auto input = engines.translate(text);
    const bool oracle = engines.accepts(input);
    for (const Variant variant : {Variant::kDfa, Variant::kNfa, Variant::kRid})
      EXPECT_EQ(engines.recognize(variant, input, pool, options).accepted, oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginesAgreement, ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace rispar
