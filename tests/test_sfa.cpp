#include "core/sfa.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "core/serial_match.hpp"
#include "helpers.hpp"
#include "parallel/csdpa.hpp"
#include "regex/parser.hpp"

namespace rispar {
namespace {

TEST(Sfa, IdentityIsInitialState) {
  const Dfa dfa = testing::fig2_dfa();
  const auto sfa = try_build_sfa(dfa);
  ASSERT_TRUE(sfa.has_value());
  ASSERT_EQ(sfa->map_width(), 2);
  EXPECT_EQ(sfa->mapping_entry(sfa->initial(), 0), 0);
  EXPECT_EQ(sfa->mapping_entry(sfa->initial(), 1), 1);
}

TEST(Sfa, MappingsComposeLikeDfaRuns) {
  const Dfa dfa = testing::fig2_dfa();
  const auto sfa = try_build_sfa(dfa);
  ASSERT_TRUE(sfa.has_value());
  Prng prng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const auto word = testing::random_word(prng, 2, prng.pick_index(12));
    std::uint64_t transitions = 0;
    const State arrival = sfa->run(word.data(), word.size(), transitions);
    EXPECT_EQ(transitions, word.size());
    // mapping(arrival)[q] must equal δ*(q, word) for every q.
    for (State q = 0; q < dfa.num_states(); ++q) {
      std::uint64_t ignore = 0;
      const State direct = run_dfa_span(dfa, q, word.data(), word.size(), ignore);
      EXPECT_EQ(sfa->mapping_entry(arrival, q), direct);
    }
  }
}

TEST(Sfa, BudgetRejectsExplosion) {
  // Interestingly, the [ab]*a[ab]{k} family's SFA *collapses* (the mapping
  // is a function of the last k+1 symbols only), so the explosion witness
  // is the traffic line grammar, whose SFA has thousands of mappings.
  const Dfa dfa = minimize_dfa(determinize(glushkov_nfa(parse_regex(
      "(May [0-9]{2} [0-9]{2}:[0-9]{2}:[0-9]{2} host[0-9] "
      "(sshd|kernel|systemd|nginxd)\\[[0-9]{1,5}\\]: "
      "(ACCEPT|REJECT|DROP) src=[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}"
      " dpt=[0-9]{1,5}\n)*"))));
  EXPECT_FALSE(try_build_sfa(dfa, 1 << 10).has_value());
  // With a generous budget the same machine fits (~8.5k mappings).
  EXPECT_TRUE(try_build_sfa(dfa, 1 << 15).has_value());
}

TEST(Sfa, SmallTotalAutomatonStaysSmall) {
  // fig2 is a 2-state total DFA: at most 3^2 mappings exist.
  const auto sfa = try_build_sfa(testing::fig2_dfa());
  ASSERT_TRUE(sfa.has_value());
  EXPECT_LE(sfa->num_states(), 9);
  EXPECT_GE(sfa->num_states(), 2);
}

TEST(SfaDevice, ZeroSpeculationTransitionCount) {
  // The whole point of the SFA: exactly n transitions regardless of c.
  const Dfa dfa = testing::fig2_dfa();
  const auto sfa = try_build_sfa(dfa);
  ASSERT_TRUE(sfa.has_value());
  ThreadPool pool(4);
  const std::vector<Symbol> input{1, 0, 1, 0, 0, 0};
  for (const std::size_t chunks : {1u, 2u, 3u, 6u}) {
    const QueryOptions options{.chunks = chunks, .convergence = false};
    const QueryResult stats = SfaDevice(*sfa, dfa).recognize(input, pool, options);
    EXPECT_TRUE(stats.accepted);
    EXPECT_EQ(stats.transitions, input.size()) << "c=" << chunks;
  }
}

TEST(SfaDevice, EmptyInput) {
  const Dfa star = minimize_dfa(determinize(glushkov_nfa(parse_regex("a*"))));
  const auto sfa = try_build_sfa(star);
  ASSERT_TRUE(sfa.has_value());
  ThreadPool pool(2);
  const QueryOptions options{.chunks = 4, .convergence = false};
  EXPECT_TRUE(SfaDevice(*sfa, star).recognize({}, pool, options).accepted);
}

class SfaAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SfaAgreement, MatchesSerialOracleOnRandomMachines) {
  Prng prng(GetParam());
  RandomNfaConfig config;
  config.num_states = 4 + static_cast<std::int32_t>(prng.pick_index(8));
  config.num_symbols = 2;
  config.density = 1.3;
  config.nondeterminism = 0.15;
  const Nfa nfa = random_nfa(prng, config);
  const Dfa dfa = minimize_dfa(determinize(nfa));
  const auto sfa = try_build_sfa(dfa, 1 << 14);
  if (!sfa.has_value()) GTEST_SKIP() << "SFA exploded (expected for some draws)";

  ThreadPool pool(4);
  for (const std::size_t chunks : {1u, 3u, 5u}) {
    const QueryOptions options{.chunks = chunks, .convergence = false};
    for (int trial = 0; trial < 15; ++trial) {
      const auto word =
          testing::random_word(prng, dfa.num_symbols(), 1 + prng.pick_index(40));
      const bool oracle = serial_match(dfa, word).accepted;
      EXPECT_EQ(SfaDevice(*sfa, dfa).recognize(word, pool, options).accepted, oracle);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SfaAgreement, ::testing::Range<std::uint64_t>(0, 15));

TEST(Sfa, PackedDeltaMatchesStepLoop) {
  // The SFA's own δ is width-packed at build time (the satellite of the
  // SIMD PR): packed() must hold the symbol-major copy of the step table,
  // run() must walk it to the same arrival state and transition count as a
  // naive step() loop, and the width must follow the state count.
  Prng prng(77);
  for (int trial = 0; trial < 8; ++trial) {
    RandomNfaConfig config;
    config.num_states = 3 + static_cast<std::int32_t>(prng.pick_index(5));
    config.num_symbols = 2;
    const Nfa nfa = random_nfa(prng, config);
    const Dfa dfa = minimize_dfa(determinize(nfa));
    const auto sfa = try_build_sfa(dfa, 1 << 14);
    if (!sfa.has_value()) continue;

    const PackedTable& packed = sfa->packed();
    EXPECT_EQ(packed.num_states(), sfa->num_states());
    EXPECT_EQ(packed.num_symbols(), sfa->num_symbols());
    EXPECT_EQ(packed.width(), sfa->num_states() < 0xFF ? TableWidth::kU8
              : sfa->num_states() < 0xFFFF              ? TableWidth::kU16
                                                        : TableWidth::kI32);

    for (int word_trial = 0; word_trial < 10; ++word_trial) {
      auto word = testing::random_word(prng, sfa->num_symbols(),
                                       prng.pick_index(60));
      if (!word.empty() && prng.pick_index(3) == 0)
        word[prng.pick_index(word.size())] = sfa->num_symbols();  // alien
      State expected = sfa->initial();
      std::uint64_t expected_transitions = 0;
      bool aborted = false;
      for (const Symbol symbol : word) {
        if (symbol < 0 || symbol >= sfa->num_symbols()) {
          expected = sfa->all_dead_state().value_or(expected);
          aborted = true;
          break;
        }
        expected = sfa->step(expected, symbol);
        ++expected_transitions;
      }
      (void)aborted;
      std::uint64_t transitions = 0;
      EXPECT_EQ(sfa->run(word.data(), word.size(), transitions), expected);
      EXPECT_EQ(transitions, expected_transitions);
    }
  }
}

TEST(Sfa, ConstructionCostDwarfsRidfa) {
  // The paper's qualitative claim: SFA construction is far bigger than the
  // RI-DFA for rigid formats. The traffic line grammar: RI-DFA ~103 states
  // vs SFA in the thousands.
  const Nfa nfa = glushkov_nfa(parse_regex(
      "(May [0-9]{2} [0-9]{2}:[0-9]{2}:[0-9]{2} host[0-9] "
      "(sshd|kernel|systemd|nginxd)\\[[0-9]{1,5}\\]: "
      "(ACCEPT|REJECT|DROP) src=[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}"
      " dpt=[0-9]{1,5}\n)*"));
  const Dfa dfa = minimize_dfa(determinize(nfa));
  const Ridfa ridfa = build_ridfa(nfa);
  const auto sfa = try_build_sfa(dfa, 1 << 15);
  ASSERT_TRUE(sfa.has_value());
  EXPECT_GT(sfa->num_states(), 4 * ridfa.num_states());
}

}  // namespace
}  // namespace rispar
