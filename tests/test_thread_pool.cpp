#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

namespace rispar {
namespace {

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.run(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SingleTask) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.run(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, MoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  pool.run(1000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 999ull * 1000 / 2);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 200; ++batch)
    pool.run(8, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1600);
}

TEST(ThreadPool, VaryingBatchSizes) {
  ThreadPool pool(3);
  for (const std::size_t count : {1u, 2u, 3u, 4u, 17u, 64u, 1u, 128u}) {
    std::atomic<std::size_t> done{0};
    pool.run(count, [&](std::size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), count);
  }
}

TEST(ThreadPool, ActuallyRunsInParallel) {
  // With 4 workers and 4 tasks that rendezvous on a barrier, the batch can
  // only complete if all 4 run concurrently.
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  pool.run(4, [&](std::size_t) {
    arrived.fetch_add(1);
    while (arrived.load() < 4) std::this_thread::yield();
  });
  EXPECT_EQ(arrived.load(), 4);
}

TEST(ThreadPool, TasksSeeDistinctIndices) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::size_t> indices;
  pool.run(64, [&](std::size_t i) {
    std::lock_guard lock(mutex);
    indices.insert(i);
  });
  EXPECT_EQ(indices.size(), 64u);
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), 63u);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructionWithoutRunIsClean) {
  ThreadPool pool(6);
  // No batch submitted; destructor must join idle workers without deadlock.
}

TEST(ThreadPool, StressManySmallBatches) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> checksum{0};
  for (int round = 0; round < 500; ++round)
    pool.run(3, [&](std::size_t i) { checksum.fetch_add(i + 1); });
  EXPECT_EQ(checksum.load(), 500u * 6);
}

}  // namespace
}  // namespace rispar
