#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace rispar {
namespace {

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.run(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.run(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SingleTask) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.run(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, MoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  pool.run(1000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 999ull * 1000 / 2);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 200; ++batch)
    pool.run(8, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 1600);
}

TEST(ThreadPool, VaryingBatchSizes) {
  ThreadPool pool(3);
  for (const std::size_t count : {1u, 2u, 3u, 4u, 17u, 64u, 1u, 128u}) {
    std::atomic<std::size_t> done{0};
    pool.run(count, [&](std::size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), count);
  }
}

TEST(ThreadPool, ActuallyRunsInParallel) {
  // With 4 workers and 4 tasks that rendezvous on a barrier, the batch can
  // only complete if all 4 run concurrently.
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  pool.run(4, [&](std::size_t) {
    arrived.fetch_add(1);
    while (arrived.load() < 4) std::this_thread::yield();
  });
  EXPECT_EQ(arrived.load(), 4);
}

TEST(ThreadPool, TasksSeeDistinctIndices) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::size_t> indices;
  pool.run(64, [&](std::size_t i) {
    std::lock_guard lock(mutex);
    indices.insert(i);
  });
  EXPECT_EQ(indices.size(), 64u);
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), 63u);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructionWithoutRunIsClean) {
  ThreadPool pool(6);
  // No batch submitted; destructor must join idle workers without deadlock.
}

TEST(ThreadPool, StressManySmallBatches) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> checksum{0};
  for (int round = 0; round < 500; ++round)
    pool.run(3, [&](std::size_t i) { checksum.fetch_add(i + 1); });
  EXPECT_EQ(checksum.load(), 500u * 6);
}

TEST(ThreadPool, NestedRunExecutesInline) {
  // run() from inside a task must not deadlock on the single batch slot;
  // it executes the nested batch inline on the calling thread.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> inner_sum{0};
  pool.run(8, [&](std::size_t) {
    pool.run(10, [&](std::size_t i) { inner_sum.fetch_add(i + 1); });
  });
  EXPECT_EQ(inner_sum.load(), 8u * 55);
}

TEST(ThreadPool, DeeplyNestedRun) {
  ThreadPool pool(2);
  std::atomic<int> leaf_calls{0};
  pool.run(3, [&](std::size_t) {
    pool.run(2, [&](std::size_t) {
      pool.run(2, [&](std::size_t) { leaf_calls.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaf_calls.load(), 3 * 2 * 2);
}

TEST(ThreadPool, NestedZeroCountIsANoop) {
  ThreadPool pool(2);
  std::atomic<int> outer{0};
  pool.run(4, [&](std::size_t) {
    pool.run(0, [](std::size_t) { FAIL() << "must not be called"; });
    outer.fetch_add(1);
  });
  EXPECT_EQ(outer.load(), 4);
}

TEST(ThreadPool, NestedRunSeesAllIndices) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  pool.run(5, [&](std::size_t outer_index) {
    pool.run(7, [&](std::size_t inner_index) {
      std::lock_guard lock(mutex);
      pairs.emplace(outer_index, inner_index);
    });
  });
  EXPECT_EQ(pairs.size(), 35u);
}

TEST(ThreadPool, CrossPoolNestingStaysParallel) {
  // A task on pool A calling pool B dispatches to B normally (only
  // same-pool reentrancy inlines): a rendezvous of 2 inside B's batch can
  // only complete if B runs it with real parallelism (B's worker plus the
  // participating A-task thread).
  ThreadPool outer(1);
  ThreadPool inner(1);
  std::atomic<int> arrived{0};
  outer.run(1, [&](std::size_t) {
    inner.run(2, [&](std::size_t) {
      arrived.fetch_add(1);
      while (arrived.load() < 2) std::this_thread::yield();
    });
  });
  EXPECT_EQ(arrived.load(), 2);
}

TEST(ThreadPool, CallerParticipatesWhenPoolIsBusy) {
  // One worker blocked on a gate; a 2-task batch can still finish because
  // the calling thread drains tasks itself.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  pool.run(2, [&](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPool, ConcurrentExternalCallersSerializeSafely) {
  // The batch slot is single-entry; concurrent run() callers must queue on
  // the callers mutex instead of clobbering each other. Every batch's
  // counter must land exactly on its own count.
  ThreadPool pool(2);
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 50; ++round) {
        std::atomic<int> done{0};
        const std::size_t count = 1 + static_cast<std::size_t>((c + round) % 7);
        pool.run(count, [&](std::size_t) { done.fetch_add(1); });
        if (done.load() != static_cast<int>(count)) ++failures;
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPool, StressSlowStragglerWakesSleepingCaller) {
  // Force the slow path: a task outlasts the caller's spin window, so the
  // caller must sleep on the condition variable and be woken exactly once
  // per batch by the finishing worker.
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> done{0};
    pool.run(3, [&](std::size_t i) {
      if (i == 2) std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
    EXPECT_EQ(done.load(), 3);
  }
}

// ---------------------------------------------------------------------------
// Work-stealing coverage: the per-worker deques, cross-batch interleaving
// and parallel nested runs the stealing pool introduced.
// ---------------------------------------------------------------------------

TEST(WorkStealing, StealHeavyManyTinyTasksNoDoubleExecution) {
  // The steal-heavy shape: tasks ≫ workers, each task near-zero work, so
  // claims race constantly between the two workers and the participating
  // caller. Every index must execute exactly once — a double claim would
  // push some counter to 2, a lost task would leave one at 0 (and hang the
  // barrier before that).
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    constexpr std::size_t kTasks = 10000;
    std::vector<std::atomic<int>> hits(kTasks);
    pool.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kTasks; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(WorkStealing, NestedRunFromWorkerIsStealable) {
  // A nested run() pushed onto a worker's own deque must be visible to
  // thieves: the inner batch rendezvouses two threads, which can never
  // complete if nesting executed inline on one thread (the old pool's
  // semantics).
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  pool.run(1, [&](std::size_t) {
    pool.run(2, [&](std::size_t) {
      arrived.fetch_add(1);
      while (arrived.load() < 2) std::this_thread::yield();
    });
  });
  EXPECT_EQ(arrived.load(), 2);
}

TEST(WorkStealing, NestedRunFromWorkersAndExternalParticipant) {
  // Pin all three participants — both workers (whose nested calls take the
  // own-deque path) and the external caller (whose nested calls take the
  // injection path) — inside tasks at once, then nest from each.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  std::atomic<std::uint64_t> inner_sum{0};
  pool.run(3, [&](std::size_t) {
    arrived.fetch_add(1);
    while (arrived.load() < 3) std::this_thread::yield();
    pool.run(10, [&](std::size_t i) { inner_sum.fetch_add(i + 1); });
  });
  EXPECT_EQ(inner_sum.load(), 3u * 55);
}

TEST(WorkStealing, ConcurrentCallersBatchesInterleave) {
  // Two external callers whose single-task batches rendezvous with each
  // other: completing requires BOTH batches in flight simultaneously. A
  // pool that serializes external callers (the pre-stealing design) can
  // never finish the first batch.
  ThreadPool pool(2);
  std::atomic<int> rendezvous{0};
  std::thread other([&] {
    pool.run(1, [&](std::size_t) {
      rendezvous.fetch_add(1);
      while (rendezvous.load() < 2) std::this_thread::yield();
    });
  });
  pool.run(1, [&](std::size_t) {
    rendezvous.fetch_add(1);
    while (rendezvous.load() < 2) std::this_thread::yield();
  });
  other.join();
  EXPECT_EQ(rendezvous.load(), 2);
}

TEST(WorkStealing, ConcurrentCallersWithNestingStress) {
  // Many external threads, each submitting batches whose tasks nest again
  // — the sanitizer-stress shape for claim exclusivity across deques and
  // the injection queue. Checksums catch double/lost execution.
  ThreadPool pool(3);
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 40; ++round) {
        const std::size_t outer = 1 + static_cast<std::size_t>((c + round) % 4);
        std::atomic<std::uint64_t> sum{0};
        pool.run(outer, [&](std::size_t) {
          pool.run(5, [&](std::size_t i) { sum.fetch_add(i + 1); });
        });
        if (sum.load() != outer * 15) ++failures;
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(WorkStealing, ThrowingTaskFailsItsBatchAndPoolSurvives) {
  // A throwing task must not unwind run() while sister tasks are still
  // claimable (their Task pointers live on run()'s stack): the barrier
  // completes, every non-throwing index executes, the FIRST exception is
  // rethrown on the submitting thread, and the pool stays usable.
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::atomic<int>> hits(64);
    bool thrown = false;
    try {
      pool.run(64, [&](std::size_t i) {
        if (i == 3) throw std::runtime_error("task 3 failed");
        hits[i].fetch_add(1);
      });
    } catch (const std::runtime_error& error) {
      thrown = true;
      EXPECT_STREQ(error.what(), "task 3 failed");
    }
    EXPECT_TRUE(thrown);
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), i == 3 ? 0 : 1) << i;
  }
  std::atomic<int> after{0};
  pool.run(16, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 16);
}

TEST(WorkStealing, ThrowingNestedTaskPropagatesToOuterCaller) {
  // A nested batch's exception surfaces at the nested run() inside the
  // outer task; uncaught there, the outer batch captures it and the
  // outermost caller sees it.
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(2,
                        [&](std::size_t) {
                          pool.run(4, [&](std::size_t i) {
                            if (i == 1) throw std::runtime_error("inner");
                          });
                        }),
               std::runtime_error);
}

TEST(WorkStealing, ExternalCallerDrainsOtherBatchesWhileWaiting) {
  // An external caller with a straggling batch keeps claiming other work:
  // submit a slow 1-task batch from a helper thread, then a large batch
  // from the main thread — everything must complete without the main
  // thread's batch waiting behind the slow one (no single-batch slot).
  ThreadPool pool(1);
  std::atomic<int> slow_done{0};
  std::atomic<int> fast_done{0};
  std::thread slow_caller([&] {
    pool.run(1, [&](std::size_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      slow_done.fetch_add(1);
    });
  });
  pool.run(64, [&](std::size_t) { fast_done.fetch_add(1); });
  EXPECT_EQ(fast_done.load(), 64);
  slow_caller.join();
  EXPECT_EQ(slow_done.load(), 1);
}

}  // namespace
}  // namespace rispar
