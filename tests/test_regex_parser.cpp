#include "regex/parser.hpp"

#include <gtest/gtest.h>

#include "regex/ast.hpp"

namespace rispar {
namespace {

TEST(RegexParser, SingleByte) {
  const RePtr re = parse_regex("a");
  ASSERT_EQ(re->kind, ReKind::kLiteral);
  EXPECT_TRUE(re->bytes.test('a'));
  EXPECT_EQ(re->bytes.count(), 1u);
}

TEST(RegexParser, ConcatFlattens) {
  const RePtr re = parse_regex("abc");
  ASSERT_EQ(re->kind, ReKind::kConcat);
  EXPECT_EQ(re->children.size(), 3u);
}

TEST(RegexParser, AlternationFlattens) {
  const RePtr re = parse_regex("a|b|c");
  ASSERT_EQ(re->kind, ReKind::kAlternate);
  EXPECT_EQ(re->children.size(), 3u);
}

TEST(RegexParser, PrecedenceAltBindsLoosest) {
  const RePtr re = parse_regex("ab|cd");
  ASSERT_EQ(re->kind, ReKind::kAlternate);
  EXPECT_EQ(re->children.size(), 2u);
  EXPECT_EQ(re->children[0]->kind, ReKind::kConcat);
}

TEST(RegexParser, Quantifiers) {
  EXPECT_EQ(parse_regex("a*")->kind, ReKind::kStar);
  EXPECT_EQ(parse_regex("a+")->kind, ReKind::kPlus);
  EXPECT_EQ(parse_regex("a?")->kind, ReKind::kOptional);
}

TEST(RegexParser, StackedQuantifiersNormalize) {
  // (a*)* == a*, (a+)+ == a+, (a?)? == a?
  EXPECT_EQ(parse_regex("a**")->kind, ReKind::kStar);
  EXPECT_EQ(parse_regex("a++")->kind, ReKind::kPlus);
  EXPECT_EQ(parse_regex("a??")->kind, ReKind::kOptional);
}

TEST(RegexParser, Groups) {
  const RePtr re = parse_regex("(ab)*");
  ASSERT_EQ(re->kind, ReKind::kStar);
  EXPECT_EQ(re->children.front()->kind, ReKind::kConcat);
}

TEST(RegexParser, BoundedRepeats) {
  const RePtr exact = parse_regex("a{3}");
  ASSERT_EQ(exact->kind, ReKind::kRepeat);
  EXPECT_EQ(exact->min, 3);
  EXPECT_EQ(exact->max, 3);

  const RePtr range = parse_regex("a{2,5}");
  ASSERT_EQ(range->kind, ReKind::kRepeat);
  EXPECT_EQ(range->min, 2);
  EXPECT_EQ(range->max, 5);

  const RePtr open = parse_regex("a{2,}");
  ASSERT_EQ(open->kind, ReKind::kRepeat);
  EXPECT_EQ(open->min, 2);
  EXPECT_EQ(open->max, -1);
}

TEST(RegexParser, RepeatNormalization) {
  EXPECT_EQ(parse_regex("a{0,}")->kind, ReKind::kStar);
  EXPECT_EQ(parse_regex("a{1,}")->kind, ReKind::kPlus);
  EXPECT_EQ(parse_regex("a{0,1}")->kind, ReKind::kOptional);
  EXPECT_EQ(parse_regex("a{1}")->kind, ReKind::kLiteral);
}

TEST(RegexParser, Dot) {
  const RePtr re = parse_regex(".");
  ASSERT_EQ(re->kind, ReKind::kLiteral);
  EXPECT_TRUE(re->bytes.all());
}

TEST(RegexParser, CharacterClassRanges) {
  const RePtr re = parse_regex("[a-cx]");
  ASSERT_EQ(re->kind, ReKind::kLiteral);
  EXPECT_TRUE(re->bytes.test('a'));
  EXPECT_TRUE(re->bytes.test('b'));
  EXPECT_TRUE(re->bytes.test('c'));
  EXPECT_TRUE(re->bytes.test('x'));
  EXPECT_FALSE(re->bytes.test('d'));
  EXPECT_EQ(re->bytes.count(), 4u);
}

TEST(RegexParser, NegatedClass) {
  const RePtr re = parse_regex("[^a]");
  ASSERT_EQ(re->kind, ReKind::kLiteral);
  EXPECT_FALSE(re->bytes.test('a'));
  EXPECT_TRUE(re->bytes.test('b'));
  EXPECT_EQ(re->bytes.count(), 255u);
}

TEST(RegexParser, ClassWithLeadingBracket) {
  // ']' right after '[' is a literal member.
  const RePtr re = parse_regex("[]a]");
  ASSERT_EQ(re->kind, ReKind::kLiteral);
  EXPECT_TRUE(re->bytes.test(']'));
  EXPECT_TRUE(re->bytes.test('a'));
}

TEST(RegexParser, ClassTrailingDashIsLiteral) {
  const RePtr re = parse_regex("[a-]");
  ASSERT_EQ(re->kind, ReKind::kLiteral);
  EXPECT_TRUE(re->bytes.test('a'));
  EXPECT_TRUE(re->bytes.test('-'));
}

TEST(RegexParser, Escapes) {
  EXPECT_TRUE(parse_regex("\\d")->bytes.test('5'));
  EXPECT_FALSE(parse_regex("\\d")->bytes.test('a'));
  EXPECT_TRUE(parse_regex("\\w")->bytes.test('_'));
  EXPECT_TRUE(parse_regex("\\s")->bytes.test(' '));
  EXPECT_TRUE(parse_regex("\\n")->bytes.test('\n'));
  EXPECT_TRUE(parse_regex("\\t")->bytes.test('\t'));
  EXPECT_TRUE(parse_regex("\\\\")->bytes.test('\\'));
  EXPECT_TRUE(parse_regex("\\.")->bytes.test('.'));
  EXPECT_EQ(parse_regex("\\.")->bytes.count(), 1u);
}

TEST(RegexParser, NegatedEscapes) {
  const RePtr re = parse_regex("\\D");
  EXPECT_FALSE(re->bytes.test('5'));
  EXPECT_TRUE(re->bytes.test('a'));
}

TEST(RegexParser, HexEscape) {
  const RePtr re = parse_regex("\\x41");
  EXPECT_TRUE(re->bytes.test('A'));
  EXPECT_EQ(re->bytes.count(), 1u);
}

TEST(RegexParser, EscapeInsideClass) {
  const RePtr re = parse_regex("[\\d_]");
  EXPECT_TRUE(re->bytes.test('7'));
  EXPECT_TRUE(re->bytes.test('_'));
  EXPECT_FALSE(re->bytes.test('a'));
}

TEST(RegexParser, EmptyPatternIsEpsilon) {
  EXPECT_EQ(parse_regex("")->kind, ReKind::kEpsilon);
  EXPECT_EQ(parse_regex("()")->kind, ReKind::kEpsilon);
}

TEST(RegexParser, EmptyAlternationBranch) {
  // "a|" is a | ε — nullable.
  const RePtr re = parse_regex("a|");
  EXPECT_TRUE(re_nullable(re));
}

TEST(RegexParser, MalformedPatternsThrow) {
  EXPECT_THROW(parse_regex("("), RegexError);
  EXPECT_THROW(parse_regex(")"), RegexError);
  EXPECT_THROW(parse_regex("(a"), RegexError);
  EXPECT_THROW(parse_regex("*a"), RegexError);
  EXPECT_THROW(parse_regex("a{2"), RegexError);
  EXPECT_THROW(parse_regex("a{5,2}"), RegexError);
  EXPECT_THROW(parse_regex("[abc"), RegexError);
  EXPECT_THROW(parse_regex("[z-a]"), RegexError);
  EXPECT_THROW(parse_regex("a\\"), RegexError);
  EXPECT_THROW(parse_regex("a{999999}"), RegexError);
}

TEST(RegexParser, ErrorCarriesPosition) {
  try {
    parse_regex("ab(cd");
    FAIL() << "expected RegexError";
  } catch (const RegexError& error) {
    EXPECT_EQ(error.position(), 5u);
  }
}

TEST(RegexParser, NullabilityOfCompounds) {
  EXPECT_TRUE(re_nullable(parse_regex("a*")));
  EXPECT_TRUE(re_nullable(parse_regex("a*b*")));
  EXPECT_FALSE(re_nullable(parse_regex("a*b")));
  EXPECT_TRUE(re_nullable(parse_regex("(ab)?")));
  EXPECT_FALSE(re_nullable(parse_regex("a{2,3}")));
  EXPECT_TRUE(re_nullable(parse_regex("a{0,3}")));
}

TEST(RegexParser, PositionsCountLiterals) {
  EXPECT_EQ(re_positions(parse_regex("abc")), 3u);
  EXPECT_EQ(re_positions(parse_regex("(a|b)*a(a|b){3}")), 9u);
}

TEST(RegexParser, PaperBenchmarkPatternsParse) {
  EXPECT_NO_THROW(parse_regex("(ab|ba)*"));
  EXPECT_NO_THROW(parse_regex("(a|b)*a(a|b){8}"));
  EXPECT_NO_THROW(parse_regex(".*<h3>[a-z0-9 ]*[0-9][a-z0-9 ]{2}</h3>.*"));
  EXPECT_NO_THROW(parse_regex(".*(GATTACA|CCGGTTAA|ACGTACGT).*"));
}

}  // namespace
}  // namespace rispar
