#include "regex/random_regex.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/nfa_ops.hpp"
#include "regex/printer.hpp"

namespace rispar {
namespace {

TEST(RandomRegex, DeterministicForSeed) {
  Prng a(5), b(5);
  RandomRegexConfig config;
  EXPECT_EQ(regex_to_string(random_regex(a, config)),
            regex_to_string(random_regex(b, config)));
}

TEST(RandomRegex, RespectsAlphabet) {
  Prng prng(9);
  RandomRegexConfig config;
  config.alphabet = "xy";
  for (int i = 0; i < 20; ++i) {
    const std::string printed = regex_to_string(random_regex(prng, config));
    for (const char ch : printed)
      if (std::isalpha(static_cast<unsigned char>(ch)))
        EXPECT_TRUE(ch == 'x' || ch == 'y') << printed;
  }
}

TEST(RandomRegex, SizeTracksBudget) {
  Prng prng(11);
  RandomRegexConfig config;
  config.target_size = 30;
  double total = 0;
  for (int i = 0; i < 20; ++i)
    total += static_cast<double>(re_size(random_regex(prng, config)));
  // Normalizing constructors may shrink the tree, but not to a leaf.
  EXPECT_GT(total / 20, 5.0);
}

TEST(RandomRegex, NonEmptyLanguageWhenRequired) {
  Prng prng(13);
  RandomRegexConfig config;
  config.require_nonempty = true;
  for (int i = 0; i < 30; ++i)
    EXPECT_NE(random_regex(prng, config)->kind, ReKind::kEmpty);
}

class RandomMemberProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMemberProperty, GeneratedMembersAreAccepted) {
  Prng prng(GetParam());
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 12;
  const RePtr re = random_regex(prng, config);
  const Nfa nfa = glushkov_nfa(re);
  for (int i = 0; i < 10; ++i) {
    std::string word;
    if (!random_member(re, prng, word)) continue;  // ∅ subtree path
    EXPECT_TRUE(nfa_accepts(nfa, word))
        << "re: " << regex_to_string(re) << " word: '" << word << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMemberProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(RandomMember, EmptyLanguageReturnsFalse) {
  Prng prng(1);
  std::string word;
  EXPECT_FALSE(random_member(re_empty(), prng, word));
}

TEST(RandomMember, EpsilonYieldsEmptyWord) {
  Prng prng(1);
  std::string word;
  EXPECT_TRUE(random_member(re_epsilon(), prng, word));
  EXPECT_TRUE(word.empty());
}

TEST(RandomMember, RepeatHonorsMinimum) {
  Prng prng(3);
  const RePtr re = re_repeat(re_byte('a'), 3, 5);
  for (int i = 0; i < 20; ++i) {
    std::string word;
    ASSERT_TRUE(random_member(re, prng, word));
    EXPECT_GE(word.size(), 3u);
    EXPECT_LE(word.size(), 5u);
  }
}

}  // namespace
}  // namespace rispar
