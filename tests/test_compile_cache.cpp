// CompileCache tests — LRU semantics, byte-capacity accounting, the
// (mtime, size)-stamped bundle keys, and the concurrent first-insert-wins
// contract (ISSUE 8: the engine compile cache behind rispard's hot reload).
#include "engine/compile_cache.hpp"

#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rispar {
namespace {

Pattern make_pattern(const std::string& regex, int* compiles = nullptr) {
  if (compiles != nullptr) ++*compiles;
  return Pattern::compile(regex);
}

TEST(CompileCache, HitsAreSharedPtrBumpsNotRecompiles) {
  CompileCache cache;
  int compiles = 0;
  const auto key = CompileCache::regex_key("(ab)*", 0);
  const Pattern first =
      cache.get_or_compile(key, [&] { return make_pattern("(ab)*", &compiles); });
  const Pattern second =
      cache.get_or_compile(key, [&] { return make_pattern("(ab)*", &compiles); });
  EXPECT_EQ(compiles, 1);
  // Same compiled core, not merely equivalent: shared-ownership copies.
  EXPECT_EQ(&first.min_dfa(), &second.min_dfa());
  const CompileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, first.approx_bytes());
}

TEST(CompileCache, SubsetBudgetIsPartOfTheKey) {
  EXPECT_NE(CompileCache::regex_key("a*", 0), CompileCache::regex_key("a*", 100));
  EXPECT_NE(CompileCache::regex_key("a*", 0), CompileCache::regex_key("a+", 0));
}

TEST(CompileCache, ByteCapacityEvictsLeastRecentlyUsed) {
  // Budget two small patterns, then touch the first so the SECOND is the
  // LRU victim when a third arrives.
  const std::size_t one = Pattern::compile("a").approx_bytes();
  CompileCache cache(2 * one + one / 2);
  (void)cache.get_or_compile("k1", [] { return Pattern::compile("a"); });
  (void)cache.get_or_compile("k2", [] { return Pattern::compile("b"); });
  (void)cache.get_or_compile("k1", [] { return Pattern::compile("a"); });
  (void)cache.get_or_compile("k3", [] { return Pattern::compile("c"); });

  CompileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  int recompiled = 0;
  (void)cache.get_or_compile("k1", [&] { return make_pattern("a", &recompiled); });
  (void)cache.get_or_compile("k2", [&] { return make_pattern("b", &recompiled); });
  EXPECT_EQ(recompiled, 1) << "k2 should have been the evicted entry";
}

TEST(CompileCache, OversizedNewestEntryIsStillRetained) {
  CompileCache cache(1);  // nothing fits, yet the latest compile must stay
  (void)cache.get_or_compile("big", [] { return Pattern::compile("(a|b)*abb"); });
  EXPECT_EQ(cache.stats().entries, 1u);
  int recompiled = 0;
  (void)cache.get_or_compile("big", [&] { return make_pattern("x", &recompiled); });
  EXPECT_EQ(recompiled, 0);
}

TEST(CompileCache, ClearDropsEntriesButKeepsCounters) {
  CompileCache cache;
  (void)cache.get_or_compile("k", [] { return Pattern::compile("a"); });
  cache.clear();
  const CompileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(CompileCache, BundleKeyTracksFileIdentity) {
  const std::string path = ::testing::TempDir() + "rispar_cc_key_" +
                           std::to_string(::getpid()) + ".rpb";
  Pattern::compile("a+").save_bundle(path);
  const std::string before = CompileCache::bundle_key(path, 0);
  EXPECT_EQ(before, CompileCache::bundle_key(path, 0));
  EXPECT_NE(before, CompileCache::bundle_key(path, 1));

  // Republish with a different mtime: the key must change, so a reload
  // misses instead of serving the machines of the retired file.
  struct utimbuf times{.actime = 1'000'000, .modtime = 1'000'000};
  ASSERT_EQ(::utime(path.c_str(), &times), 0);
  EXPECT_NE(CompileCache::bundle_key(path, 0), before);
  std::filesystem::remove(path);
}

TEST(CompileCache, ConcurrentMissesResolveFirstInsertWins) {
  CompileCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> compiles{0};
  std::vector<const void*> cores(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      const Pattern p = cache.get_or_compile("shared", [&] {
        compiles.fetch_add(1);
        return Pattern::compile("(ab|ba)*");
      });
      cores[static_cast<std::size_t>(t)] = &p.min_dfa();
    });
  for (auto& thread : threads) thread.join();
  // Several threads may have compiled (the factory runs unlocked), but all
  // of them must end up holding the one winning Pattern.
  EXPECT_GE(compiles.load(), 1);
  for (const void* core : cores) EXPECT_EQ(core, cores[0]);
  EXPECT_EQ(cache.stats().entries, 1u);
}

}  // namespace
}  // namespace rispar
