#include "automata/minimize.hpp"

#include <gtest/gtest.h>

#include "automata/equivalence.hpp"
#include "automata/glushkov.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "regex/printer.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

TEST(Minimize, MergesEquivalentStates) {
  // Two parallel branches accepting "a" — the branch targets are equivalent.
  Dfa dfa = Dfa::with_identity_alphabet(2);
  for (int i = 0; i < 4; ++i) dfa.add_state(i >= 2);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 2);
  dfa.set_transition(0, 1, 3);
  const Dfa minimal = minimize_dfa(dfa);
  EXPECT_EQ(minimal.num_states(), 2);
  EXPECT_TRUE(dfa_equivalent(dfa, minimal));
}

TEST(Minimize, RemovesDeadStates) {
  Dfa dfa = Dfa::with_identity_alphabet(1);
  for (int i = 0; i < 3; ++i) dfa.add_state(i == 1);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 1);
  dfa.set_transition(1, 0, 2);  // state 2 is a trap (non-final, self-loop)
  dfa.set_transition(2, 0, 2);
  const Dfa minimal = minimize_dfa(dfa);
  EXPECT_EQ(minimal.num_states(), 2);  // trap removed, table partial
  EXPECT_TRUE(dfa_equivalent(dfa, minimal));
}

TEST(Minimize, RemovesUnreachableStates) {
  Dfa dfa = Dfa::with_identity_alphabet(1);
  for (int i = 0; i < 3; ++i) dfa.add_state(i == 1);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 1);
  dfa.set_transition(2, 0, 1);  // state 2 unreachable
  const Dfa minimal = minimize_dfa(dfa);
  EXPECT_EQ(minimal.num_states(), 2);
  EXPECT_TRUE(dfa_equivalent(dfa, minimal));
}

TEST(Minimize, EmptyLanguage) {
  Dfa dfa = Dfa::with_identity_alphabet(1);
  dfa.add_state(false);
  dfa.set_initial(0);
  const Dfa minimal = minimize_dfa(dfa);
  EXPECT_EQ(minimal.num_states(), 1);
  EXPECT_FALSE(minimal.accepts(std::vector<Symbol>{}));
  EXPECT_FALSE(minimal.accepts(std::vector<Symbol>{0}));
}

TEST(Minimize, AlreadyMinimalUnchangedSize) {
  const Dfa dfa = testing::fig2_dfa();
  EXPECT_EQ(minimize_dfa(dfa).num_states(), 2);
}

TEST(Minimize, Fig1MinimalDfaHasFourStates) {
  const Dfa minimal = minimize_dfa(determinize(testing::fig1_nfa()));
  EXPECT_EQ(minimal.num_states(), 4);
}

TEST(Minimize, Idempotent) {
  Prng prng(333);
  const Nfa nfa = random_nfa(prng);
  const Dfa once = minimize_dfa(determinize(nfa));
  const Dfa twice = minimize_dfa(once);
  EXPECT_EQ(once.num_states(), twice.num_states());
  EXPECT_TRUE(dfa_equivalent(once, twice));
}

TEST(NerodeClasses, PartitionSeparatesByFinality) {
  const Dfa dfa = testing::fig2_dfa();
  const NerodePartition partition = nerode_classes(dfa);
  EXPECT_NE(partition.class_of[0], partition.class_of[1]);
}

TEST(NerodeClasses, EquivalentStatesShareClass) {
  Dfa dfa = Dfa::with_identity_alphabet(1);
  for (int i = 0; i < 3; ++i) dfa.add_state(i > 0);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 1);
  dfa.set_transition(1, 0, 2);
  dfa.set_transition(2, 0, 1);
  // States 1 and 2 both accept a* (always final, loop) — equivalent.
  const NerodePartition partition = nerode_classes(dfa);
  EXPECT_EQ(partition.class_of[1], partition.class_of[2]);
  EXPECT_NE(partition.class_of[0], partition.class_of[1]);
}

TEST(NerodeClasses, DeadClassIdentified) {
  Dfa dfa = Dfa::with_identity_alphabet(1);
  for (int i = 0; i < 3; ++i) dfa.add_state(i == 0);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 1);  // 1: non-final, no outgoing => dead
  dfa.set_transition(2, 0, 0);  // 2: can reach the final state => alive
  const NerodePartition partition = nerode_classes(dfa);
  ASSERT_NE(partition.dead_class, -1);
  EXPECT_EQ(partition.class_of[1], partition.dead_class);
  EXPECT_NE(partition.class_of[2], partition.dead_class);
}

TEST(NerodeClasses, CompleteAutomatonWithoutDeadStates) {
  const NerodePartition partition = nerode_classes(testing::fig2_dfa());
  // fig2 is complete and every state can accept; no state matches the sink.
  EXPECT_EQ(partition.dead_class, -1);
}

class MinimizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimizeProperty, EquivalentAndNotLarger) {
  Prng prng(GetParam());
  RandomNfaConfig config;
  config.num_states = 6 + static_cast<std::int32_t>(prng.pick_index(40));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(3));
  const Nfa nfa = random_nfa(prng, config);
  const Dfa dfa = determinize(nfa);
  const Dfa minimal = minimize_dfa(dfa);
  EXPECT_LE(minimal.num_states(), dfa.num_states());
  EXPECT_TRUE(dfa_equivalent(dfa, minimal));
}

TEST_P(MinimizeProperty, MinimalityViaBrzozowskiWitness) {
  // |minimize(D)| must equal the number of Nerode classes of the reachable,
  // live part — cross-checked by minimizing twice through reversal
  // (Brzozowski): determinize(reverse(determinize(reverse(A)))) is minimal.
  Prng prng(GetParam() ^ 0x777);
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 10;
  const RePtr re = random_regex(prng, config);
  const Nfa nfa = glushkov_nfa(re);

  const Dfa hopcroft = minimize_dfa(determinize(nfa));
  const Dfa brzozowski = determinize(
      trim_unreachable(reverse(dfa_to_nfa(determinize(trim_unreachable(reverse(nfa)))))));
  // Brzozowski output may keep a dead sink absent from ours; compare the
  // minimized version.
  const Dfa brzozowski_min = minimize_dfa(brzozowski);
  EXPECT_EQ(hopcroft.num_states(), brzozowski_min.num_states())
      << regex_to_string(re);
  EXPECT_TRUE(dfa_equivalent(hopcroft, brzozowski_min));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeProperty, ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rispar
