#include "automata/serialize.hpp"

#include <gtest/gtest.h>

#include "automata/equivalence.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "helpers.hpp"
#include "util/prng.hpp"

namespace rispar {
namespace {

TEST(Serialize, NfaRoundTrip) {
  const Nfa nfa = testing::fig1_nfa();
  const Nfa loaded = nfa_from_string(nfa_to_string(nfa));
  EXPECT_EQ(loaded.num_states(), nfa.num_states());
  EXPECT_EQ(loaded.num_symbols(), nfa.num_symbols());
  EXPECT_EQ(loaded.initial(), nfa.initial());
  EXPECT_EQ(loaded.num_edges(), nfa.num_edges());
  EXPECT_TRUE(nfa_equivalent(nfa, loaded));
}

TEST(Serialize, NfaWithEpsilonRoundTrip) {
  Nfa nfa = Nfa::with_identity_alphabet(2);
  nfa.add_state();
  nfa.add_state(true);
  nfa.add_epsilon(0, 1);
  nfa.add_edge(1, 0, 0);
  const Nfa loaded = nfa_from_string(nfa_to_string(nfa));
  EXPECT_TRUE(loaded.has_epsilon());
  EXPECT_TRUE(nfa_equivalent(nfa, loaded));
}

TEST(Serialize, DfaRoundTrip) {
  const Dfa dfa = testing::fig2_dfa();
  const Dfa loaded = dfa_from_string(dfa_to_string(dfa));
  EXPECT_EQ(loaded.num_states(), dfa.num_states());
  EXPECT_TRUE(dfa_equivalent(dfa, loaded));
}

TEST(Serialize, PartialDfaKeepsDeadEntries) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  dfa.add_state(true);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 0);  // symbol 1 left dead
  const Dfa loaded = dfa_from_string(dfa_to_string(dfa));
  EXPECT_EQ(loaded.step(0, 0), 0);
  EXPECT_EQ(loaded.step(0, 1), kDeadState);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n\nnfa 2 1\ninitial 0\n# another\nfinal 1\nedge 0 0 1\n";
  const Nfa nfa = nfa_from_string(text);
  EXPECT_EQ(nfa.num_states(), 2);
  EXPECT_TRUE(nfa.is_final(1));
}

TEST(Serialize, MalformedInputsThrow) {
  EXPECT_THROW(nfa_from_string(""), std::runtime_error);
  EXPECT_THROW(nfa_from_string("dfa 2 1\n"), std::runtime_error);
  EXPECT_THROW(nfa_from_string("nfa 2 1\nedge 0 0 5\n"), std::runtime_error);
  EXPECT_THROW(nfa_from_string("nfa 2 1\nedge 0 3 1\n"), std::runtime_error);
  EXPECT_THROW(nfa_from_string("nfa 2 1\nbogus 1 2 3\n"), std::runtime_error);
  EXPECT_THROW(nfa_from_string("nfa -1 1\n"), std::runtime_error);
  EXPECT_THROW(dfa_from_string("nfa 2 1\n"), std::runtime_error);
  EXPECT_THROW(dfa_from_string("dfa 2 1\ntrans 0 0 9\n"), std::runtime_error);
}

TEST(Serialize, RandomNfaRoundTripSweep) {
  Prng prng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    RandomNfaConfig config;
    config.num_states = 5 + static_cast<std::int32_t>(prng.pick_index(40));
    config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(5));
    const Nfa nfa = random_nfa(prng, config);
    const Nfa loaded = nfa_from_string(nfa_to_string(nfa));
    EXPECT_EQ(loaded.num_edges(), nfa.num_edges());
    EXPECT_TRUE(dfa_equivalent(determinize(nfa), determinize(loaded)));
  }
}

}  // namespace
}  // namespace rispar
