#include "automata/serialize.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "automata/equivalence.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "engine/engine.hpp"
#include "helpers.hpp"
#include "util/prng.hpp"

namespace rispar {
namespace {

TEST(Serialize, NfaRoundTrip) {
  const Nfa nfa = testing::fig1_nfa();
  const Nfa loaded = nfa_from_string(nfa_to_string(nfa));
  EXPECT_EQ(loaded.num_states(), nfa.num_states());
  EXPECT_EQ(loaded.num_symbols(), nfa.num_symbols());
  EXPECT_EQ(loaded.initial(), nfa.initial());
  EXPECT_EQ(loaded.num_edges(), nfa.num_edges());
  EXPECT_TRUE(nfa_equivalent(nfa, loaded));
}

TEST(Serialize, NfaWithEpsilonRoundTrip) {
  Nfa nfa = Nfa::with_identity_alphabet(2);
  nfa.add_state();
  nfa.add_state(true);
  nfa.add_epsilon(0, 1);
  nfa.add_edge(1, 0, 0);
  const Nfa loaded = nfa_from_string(nfa_to_string(nfa));
  EXPECT_TRUE(loaded.has_epsilon());
  EXPECT_TRUE(nfa_equivalent(nfa, loaded));
}

TEST(Serialize, DfaRoundTrip) {
  const Dfa dfa = testing::fig2_dfa();
  const Dfa loaded = dfa_from_string(dfa_to_string(dfa));
  EXPECT_EQ(loaded.num_states(), dfa.num_states());
  EXPECT_TRUE(dfa_equivalent(dfa, loaded));
}

TEST(Serialize, PartialDfaKeepsDeadEntries) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  dfa.add_state(true);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 0);  // symbol 1 left dead
  const Dfa loaded = dfa_from_string(dfa_to_string(dfa));
  EXPECT_EQ(loaded.step(0, 0), 0);
  EXPECT_EQ(loaded.step(0, 1), kDeadState);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n\nnfa 2 1\ninitial 0\n# another\nfinal 1\nedge 0 0 1\n";
  const Nfa nfa = nfa_from_string(text);
  EXPECT_EQ(nfa.num_states(), 2);
  EXPECT_TRUE(nfa.is_final(1));
}

TEST(Serialize, MalformedInputsThrow) {
  EXPECT_THROW(nfa_from_string(""), std::runtime_error);
  EXPECT_THROW(nfa_from_string("dfa 2 1\n"), std::runtime_error);
  EXPECT_THROW(nfa_from_string("nfa 2 1\nedge 0 0 5\n"), std::runtime_error);
  EXPECT_THROW(nfa_from_string("nfa 2 1\nedge 0 3 1\n"), std::runtime_error);
  EXPECT_THROW(nfa_from_string("nfa 2 1\nbogus 1 2 3\n"), std::runtime_error);
  EXPECT_THROW(nfa_from_string("nfa -1 1\n"), std::runtime_error);
  EXPECT_THROW(dfa_from_string("nfa 2 1\n"), std::runtime_error);
  EXPECT_THROW(dfa_from_string("dfa 2 1\ntrans 0 0 9\n"), std::runtime_error);
}

TEST(Serialize, SymbolMapRoundTripPreservesNumbering) {
  const Pattern pattern = Pattern::compile("[a-c]x|yz*");
  const SymbolMap& map = pattern.symbols();
  std::ostringstream out;
  save_symbol_map(out, map);
  std::istringstream in(out.str());
  const SymbolMap loaded = load_symbol_map(in);
  EXPECT_EQ(loaded.num_symbols(), map.num_symbols());
  for (int b = 0; b < 256; ++b)
    EXPECT_EQ(loaded.symbol_of(static_cast<unsigned char>(b)),
              map.symbol_of(static_cast<unsigned char>(b)))
        << "byte " << b;
}

TEST(Serialize, MapTakingLoadersStopAtNextSection) {
  // Two concatenated sections load in sequence from one stream — the
  // Pattern bundle format relies on this.
  const Pattern pattern = Pattern::compile("ab*");
  std::ostringstream out;
  save_nfa(out, pattern.nfa());
  save_dfa(out, pattern.min_dfa());
  std::istringstream in(out.str());
  const Nfa nfa = load_nfa(in, pattern.symbols());
  const Dfa dfa = load_dfa(in, pattern.symbols());
  EXPECT_EQ(nfa.num_states(), pattern.nfa().num_states());
  EXPECT_EQ(dfa.num_states(), pattern.min_dfa().num_states());
  EXPECT_TRUE(dfa_equivalent(dfa, pattern.min_dfa()));
}

// ISSUE 3 satellite: Pattern::serialize()/deserialize() round-trips the
// compiled machines — exact symbol numbering, equivalent automata, equal
// query results — without reparsing the regex.
TEST(Serialize, PatternRoundTrip) {
  for (const std::string regex : {"(ab|ba)*", "[a-c]x|yz*", "<h3>", "a"}) {
    const Pattern original = Pattern::compile(regex);
    const Pattern loaded = Pattern::deserialize(original.serialize());

    for (int b = 0; b < 256; ++b)
      EXPECT_EQ(loaded.symbols().symbol_of(static_cast<unsigned char>(b)),
                original.symbols().symbol_of(static_cast<unsigned char>(b)));
    EXPECT_EQ(loaded.min_dfa().num_states(), original.min_dfa().num_states());
    EXPECT_TRUE(dfa_equivalent(loaded.min_dfa(), original.min_dfa()));
    EXPECT_TRUE(nfa_equivalent(loaded.nfa(), original.nfa()));
    EXPECT_EQ(loaded.ridfa().num_states(), original.ridfa().num_states());

    // Query-level equality through a fresh Engine on the loaded pattern.
    const Engine before(original);
    const Engine after(loaded);
    for (const std::string text : {"abbaabba", "axbxcx", "yzzzy", "<h3>x<h3>", ""}) {
      EXPECT_EQ(after.recognize(text, {.chunks = 3}).accepted,
                before.recognize(text, {.chunks = 3}).accepted)
          << regex << " on " << text;
      EXPECT_EQ(after.count(text).matches, before.count(text).matches)
          << regex << " on " << text;
      EXPECT_EQ(after.find_all(text), before.find_all(text)) << regex << " on " << text;
    }
  }
}

TEST(Serialize, PatternDeserializeRejectsMalformedBundles) {
  EXPECT_THROW(Pattern::deserialize(""), std::runtime_error);
  EXPECT_THROW(Pattern::deserialize("pattern 2\n"), std::runtime_error);
  EXPECT_THROW(Pattern::deserialize("pattern 1\nnfa 1 1\n"), std::runtime_error);
  EXPECT_THROW(Pattern::deserialize("pattern 1\nbytemap 0 1\n"), std::runtime_error);
  // A bytemap with a gap in symbol ids is rejected by SymbolMap validation.
  std::string gappy = "pattern 1\nbytemap";
  for (int b = 0; b < 256; ++b) gappy += b == 0 ? " 2" : " -1";
  gappy += "\n";
  EXPECT_THROW(Pattern::deserialize(gappy), std::runtime_error);
  // A bytemap with MORE than 256 entries (shifted/corrupted table) is
  // rejected too, not silently truncated.
  std::string overlong = "pattern 1\nbytemap";
  for (int b = 0; b < 257; ++b) overlong += " 0";
  overlong += "\n";
  EXPECT_THROW(Pattern::deserialize(overlong), std::runtime_error);
}

TEST(Serialize, RandomNfaRoundTripSweep) {
  Prng prng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    RandomNfaConfig config;
    config.num_states = 5 + static_cast<std::int32_t>(prng.pick_index(40));
    config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(5));
    const Nfa nfa = random_nfa(prng, config);
    const Nfa loaded = nfa_from_string(nfa_to_string(nfa));
    EXPECT_EQ(loaded.num_edges(), nfa.num_edges());
    EXPECT_TRUE(dfa_equivalent(determinize(nfa), determinize(loaded)));
  }
}

}  // namespace
}  // namespace rispar
