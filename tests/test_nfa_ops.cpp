#include "automata/nfa_ops.hpp"

#include <gtest/gtest.h>

#include "automata/equivalence.hpp"
#include "automata/glushkov.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "automata/thompson.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"

namespace rispar {
namespace {

TEST(EpsilonClosure, FollowsChains) {
  Nfa nfa = Nfa::with_identity_alphabet(1);
  for (int i = 0; i < 4; ++i) nfa.add_state();
  nfa.add_epsilon(0, 1);
  nfa.add_epsilon(1, 2);
  // 3 unreachable via eps
  Bitset set(4);
  set.set(0);
  epsilon_closure(nfa, set);
  EXPECT_EQ(set.to_indices(), (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(EpsilonClosure, HandlesCycles) {
  Nfa nfa = Nfa::with_identity_alphabet(1);
  for (int i = 0; i < 3; ++i) nfa.add_state();
  nfa.add_epsilon(0, 1);
  nfa.add_epsilon(1, 0);
  nfa.add_epsilon(1, 2);
  Bitset set(3);
  set.set(0);
  epsilon_closure(nfa, set);
  EXPECT_EQ(set.count(), 3u);
}

TEST(RemoveEpsilon, PreservesLanguage) {
  const Nfa thompson = thompson_nfa(parse_regex("(a|b)*abb"));
  ASSERT_TRUE(thompson.has_epsilon());
  const Nfa eps_free = remove_epsilon(thompson);
  EXPECT_FALSE(eps_free.has_epsilon());
  EXPECT_TRUE(nfa_equivalent(thompson, eps_free));
}

TEST(RemoveEpsilon, NoopOnEpsFreeInput) {
  const Nfa nfa = testing::fig1_nfa();
  const Nfa same = remove_epsilon(nfa);
  EXPECT_EQ(same.num_states(), nfa.num_states());
  EXPECT_EQ(same.num_edges(), nfa.num_edges());
}

TEST(RemoveEpsilon, NullableFinality) {
  // ε-path from initial to a final state must make the initial final.
  Nfa nfa = Nfa::with_identity_alphabet(1);
  nfa.add_state();
  nfa.add_state(true);
  nfa.add_epsilon(0, 1);
  const Nfa eps_free = remove_epsilon(nfa);
  EXPECT_TRUE(eps_free.is_final(0));
}

TEST(TrimUnreachable, DropsIslands) {
  Nfa nfa = Nfa::with_identity_alphabet(2);
  for (int i = 0; i < 5; ++i) nfa.add_state();
  nfa.set_initial(0);
  nfa.add_edge(0, 0, 1);
  nfa.add_edge(1, 1, 2);
  nfa.set_final(2);
  nfa.add_edge(3, 0, 4);  // island 3 -> 4
  std::vector<State> kept;
  const Nfa trimmed = trim_unreachable(nfa, &kept);
  EXPECT_EQ(trimmed.num_states(), 3);
  EXPECT_EQ(kept[3], kDeadState);
  EXPECT_EQ(kept[4], kDeadState);
  EXPECT_TRUE(nfa_equivalent(nfa, trimmed));
}

TEST(TrimUnreachable, FollowsEpsilon) {
  Nfa nfa = Nfa::with_identity_alphabet(1);
  for (int i = 0; i < 3; ++i) nfa.add_state();
  nfa.add_epsilon(0, 2);
  const Nfa trimmed = trim_unreachable(nfa);
  EXPECT_EQ(trimmed.num_states(), 2);  // 0 and 2
}

TEST(Reverse, ReversesLanguage) {
  // L = ab  =>  reverse(L) = ba
  const Nfa nfa = glushkov_nfa(parse_regex("ab"));
  const Nfa rev = reverse(nfa);
  EXPECT_TRUE(nfa_accepts(rev, std::vector<Symbol>{1, 0}));   // "ba"
  EXPECT_FALSE(nfa_accepts(rev, std::vector<Symbol>{0, 1}));  // "ab"
}

TEST(Reverse, DoubleReverseIsIdentityLanguage) {
  Prng prng(77);
  const Nfa nfa = random_nfa(prng);
  const Nfa twice = reverse(reverse(nfa));
  EXPECT_TRUE(nfa_equivalent(nfa, twice));
}

TEST(NfaUnion, AcceptsEitherLanguage) {
  // Both operands must share one alphabet (SymbolMap); build them by hand
  // over the identity alphabet {a=0, b=1}.
  auto chain = [](Symbol symbol) {
    Nfa nfa = Nfa::with_identity_alphabet(2);
    nfa.add_state();
    nfa.add_state();
    nfa.add_state(true);
    nfa.set_initial(0);
    nfa.add_edge(0, symbol, 1);
    nfa.add_edge(1, symbol, 2);
    return nfa;
  };
  const Nfa u = nfa_union(chain(0), chain(1));  // L = {aa, bb}
  EXPECT_TRUE(nfa_accepts(u, std::vector<Symbol>{0, 0}));
  EXPECT_TRUE(nfa_accepts(u, std::vector<Symbol>{1, 1}));
  EXPECT_FALSE(nfa_accepts(u, std::vector<Symbol>{0, 1}));
  EXPECT_FALSE(nfa_accepts(u, std::vector<Symbol>{0}));
}

TEST(NfaAccepts, ByteInterface) {
  const Nfa nfa = glushkov_nfa(parse_regex("(ab)*"));
  EXPECT_TRUE(nfa_accepts(nfa, std::string("abab")));
  EXPECT_FALSE(nfa_accepts(nfa, std::string("aba")));
  EXPECT_TRUE(nfa_accepts(nfa, std::string("")));
  EXPECT_FALSE(nfa_accepts(nfa, std::string("zz")));  // unmapped bytes
}

TEST(NfaReach, MatchesManualSimulation) {
  const Nfa nfa = testing::fig1_nfa();
  Bitset start(3);
  start.set(0);
  // ρ(0, "aab") per the figure: 0 -a-> {1} -a-> {0,1} -b-> {0,2}
  const Bitset reached = nfa_reach(nfa, start, {0, 0, 1});
  EXPECT_EQ(reached.to_indices(), (std::vector<std::int32_t>{0, 2}));
}

TEST(NfaReach, DeadOnForeignSymbol) {
  const Nfa nfa = testing::fig1_nfa();
  Bitset start(3);
  start.set(0);
  EXPECT_TRUE(nfa_reach(nfa, start, {SymbolMap::kUnmapped}).empty());
}

}  // namespace
}  // namespace rispar
