#include "regex/derivative.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/nfa_ops.hpp"
#include "regex/parser.hpp"
#include "regex/printer.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

TEST(Derivative, LiteralBasics) {
  const RePtr re = parse_regex("a");
  EXPECT_EQ(re_derivative(re, 'a')->kind, ReKind::kEpsilon);
  EXPECT_EQ(re_derivative(re, 'b')->kind, ReKind::kEmpty);
}

TEST(Derivative, ClassDerivative) {
  const RePtr re = parse_regex("[a-c]x");
  EXPECT_TRUE(derivative_match(re, "bx"));
  EXPECT_FALSE(derivative_match(re, "dx"));
}

TEST(Derivative, ConcatNullableHead) {
  // d_b(a?b) must reach ε through the nullable head.
  const RePtr re = parse_regex("a?b");
  EXPECT_TRUE(derivative_match(re, "b"));
  EXPECT_TRUE(derivative_match(re, "ab"));
  EXPECT_FALSE(derivative_match(re, "a"));
}

TEST(Derivative, StarUnrolls) {
  const RePtr re = parse_regex("(ab)*");
  EXPECT_TRUE(derivative_match(re, ""));
  EXPECT_TRUE(derivative_match(re, "abab"));
  EXPECT_FALSE(derivative_match(re, "aba"));
}

TEST(Derivative, BoundedRepeatsWithoutExpansion) {
  const RePtr re = parse_regex("a{2,4}");
  EXPECT_FALSE(derivative_match(re, "a"));
  EXPECT_TRUE(derivative_match(re, "aa"));
  EXPECT_TRUE(derivative_match(re, "aaaa"));
  EXPECT_FALSE(derivative_match(re, "aaaaa"));
}

TEST(Derivative, OpenRepeat) {
  const RePtr re = parse_regex("a{3,}");
  EXPECT_FALSE(derivative_match(re, "aa"));
  EXPECT_TRUE(derivative_match(re, "aaa"));
  EXPECT_TRUE(derivative_match(re, "aaaaaaa"));
}

TEST(Derivative, EmptyAndEpsilon) {
  EXPECT_FALSE(derivative_match(re_empty(), ""));
  EXPECT_TRUE(derivative_match(re_epsilon(), ""));
  EXPECT_FALSE(derivative_match(re_epsilon(), "a"));
}

// Cross-oracle sweep: derivatives vs the Glushkov NFA frontier simulation.
class DerivativeOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DerivativeOracle, AgreesWithGlushkovOnRandomInputs) {
  Prng prng(GetParam());
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 6 + static_cast<int>(prng.pick_index(10));
  const RePtr re = random_regex(prng, config);
  const Nfa nfa = glushkov_nfa(re);
  for (int trial = 0; trial < 25; ++trial) {
    std::string word;
    const std::size_t length = prng.pick_index(14);
    for (std::size_t i = 0; i < length; ++i)
      word.push_back(prng.next_bool(0.5) ? 'a' : 'b');
    EXPECT_EQ(derivative_match(re, word), nfa_accepts(nfa, word))
        << regex_to_string(re) << " on '" << word << "'";
  }
}

TEST_P(DerivativeOracle, AcceptsGeneratedMembers) {
  Prng prng(GetParam() ^ 0xabab);
  RandomRegexConfig config;
  config.alphabet = "abc";
  config.target_size = 10;
  const RePtr re = random_regex(prng, config);
  for (int trial = 0; trial < 10; ++trial) {
    std::string member;
    if (!random_member(re, prng, member)) continue;
    EXPECT_TRUE(derivative_match(re, member))
        << regex_to_string(re) << " on '" << member << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivativeOracle, ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rispar
