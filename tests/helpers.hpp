// Shared fixtures for the rispar test suite.
#pragma once

#include <string>
#include <vector>

#include "automata/dfa.hpp"
#include "automata/nfa.hpp"
#include "util/prng.hpp"

namespace rispar::testing {

/// The worked example of the paper's Fig. 1 / Fig. 3 / Fig. 4: a 3-state
/// NFA over Σ = {a, b, c} whose minimal DFA has 4 states and whose RI-DFA
/// has 5 states with 3 initials. Reconstructed from the figure's runs:
///   ρ(0,a)={1} ρ(0,c)={1} ρ(1,a)={0,1} ρ(1,b)={0,2} ρ(1,c)={0} ρ(2,b)={1}
/// F = {2}, q0 = 0. Symbols: a=0, b=1, c=2.
inline Nfa fig1_nfa() {
  Nfa nfa = Nfa::with_identity_alphabet(3);
  for (int s = 0; s < 3; ++s) nfa.add_state();
  nfa.set_initial(0);
  nfa.set_final(2);
  nfa.add_edge(0, 0, 1);  // 0 -a-> 1
  nfa.add_edge(0, 2, 1);  // 0 -c-> 1
  nfa.add_edge(1, 0, 0);  // 1 -a-> 0
  nfa.add_edge(1, 0, 1);  // 1 -a-> 1
  nfa.add_edge(1, 1, 0);  // 1 -b-> 0
  nfa.add_edge(1, 1, 2);  // 1 -b-> 2
  nfa.add_edge(1, 2, 0);  // 1 -c-> 0
  nfa.add_edge(2, 1, 1);  // 2 -b-> 1
  return nfa;
}

/// Fig. 1's sample string "aabcab" in symbol ids (a=0, b=1, c=2).
inline std::vector<Symbol> fig1_string() { return {0, 0, 1, 2, 0, 1}; }

/// The paper's Fig. 2 recognizer: L = b*a(ab*a | b+a)* over Σ = {a, b},
/// a 2-state DFA (q0, q1), final = {q1}. Symbols: a=0, b=1.
inline Dfa fig2_dfa() {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  dfa.add_state(false);  // q0
  dfa.add_state(true);   // q1
  dfa.set_initial(0);
  dfa.set_transition(0, 1, 0);  // q0 -b-> q0
  dfa.set_transition(0, 0, 1);  // q0 -a-> q1
  dfa.set_transition(1, 0, 0);  // q1 -a-> q0
  dfa.set_transition(1, 1, 0);  // q1 -b-> q0
  return dfa;
}

/// Uniform random symbol string over [0, k).
inline std::vector<Symbol> random_word(Prng& prng, int k, std::size_t length) {
  std::vector<Symbol> word(length);
  for (auto& symbol : word)
    symbol = static_cast<Symbol>(prng.pick_index(static_cast<std::size_t>(k)));
  return word;
}

}  // namespace rispar::testing
