// Binary bundle (.rpb) tests — the zero-copy deployment path of ISSUE 8.
//
// The contract under test: a mapped pattern is indistinguishable from the
// compiled original (bit-identical serialized forms, equal query results
// across every variant × kernel), load_mapped derives NOTHING (no parse, no
// subset construction, no table re-pack — asserted via the PackedTable
// build counter), and the mapping's lifetime is governed by shared
// ownership, not by the Pattern that opened it.
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/packed_table.hpp"
#include "bundle/mapped_bundle.hpp"
#include "engine/engine.hpp"
#include "util/governance.hpp"
#include "workloads/suite.hpp"

namespace rispar {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "rispar_bundle_test_" + std::to_string(::getpid()) +
         "_" + name;
}

/// Removes the file on scope exit (bundles are multi-megabyte; don't let
/// failed runs accumulate them in /tmp).
struct FileGuard {
  std::string path;
  ~FileGuard() { std::error_code ec; std::filesystem::remove(path, ec); }
};

// --------------------------------------------------------- exact round-trip

TEST(Bundle, MappedPatternIsBitIdenticalToTheOriginal) {
  for (const std::string regex : {"(ab|ba)*", "[a-c]x|yz*", "<h3>", "a"}) {
    const Pattern original = Pattern::compile(regex);
    const FileGuard file{temp_path("roundtrip.rpb")};
    original.save_bundle(file.path);
    const Pattern loaded = Pattern::load_mapped(file.path);

    EXPECT_EQ(loaded.source(), regex);
    EXPECT_TRUE(loaded.source_is_regex());
    // The text serialization covers bytemap, NFA and minimal DFA with exact
    // state/symbol numbering — byte equality means nothing drifted.
    EXPECT_EQ(loaded.serialize(), original.serialize()) << regex;
    // Re-bundling the loaded pattern reproduces the image byte-for-byte:
    // every adopted table and every lazy artifact round-trips exactly.
    EXPECT_EQ(Pattern::bundle_image({&loaded, 1}),
              Pattern::bundle_image({&original, 1}))
        << regex;
  }
}

// ---------------------------------------------- no derivation on the map path

TEST(Bundle, LoadMappedNeverParsesSubsetsOrRepacks) {
  const Pattern original = Pattern::compile("(May|June) [0-9]{2} (ACCEPT|DROP)");
  const FileGuard file{temp_path("norepack.rpb")};
  original.save_bundle(file.path);

  const std::uint64_t packs_before = PackedTable::build_count();
  const Pattern loaded = Pattern::load_mapped(file.path);
  // Queries must also run on the adopted tables, not trigger deferred packs:
  // the bundle ships the searcher and the SFA, so nothing is left to build.
  const Engine engine(loaded, {.threads = 2});
  EXPECT_TRUE(engine.accepts("May 12 ACCEPT"));
  EXPECT_EQ(engine.count("x May 12 ACCEPT y June 30 DROP").matches, 2u);
  for (const Variant variant :
       {Variant::kDfa, Variant::kNfa, Variant::kRid, Variant::kSfa})
    EXPECT_TRUE(
        engine.recognize(std::string_view("June 01 DROP"), {.variant = variant, .chunks = 3})
            .accepted);
  EXPECT_EQ(PackedTable::build_count(), packs_before)
      << "the mapped load path re-packed a table it should have adopted";
}

// ------------------------------------------------------- differential sweep

/// Every provenance of the same language answers every query identically.
void expect_same_answers(const Pattern& reference, const Pattern& candidate,
                         const std::vector<std::string>& texts) {
  const Engine ref(reference, {.threads = 2});
  const Engine cand(candidate, {.threads = 2});
  const bool both_sfa = reference.sfa_device() != nullptr &&
                        candidate.sfa_device() != nullptr;
  for (const std::string& text : texts) {
    for (const Variant variant : {Variant::kDfa, Variant::kNfa, Variant::kRid,
                                  Variant::kSfa}) {
      if (variant == Variant::kSfa && !both_sfa) continue;
      for (const DetKernel kernel :
           {DetKernel::kFused, DetKernel::kReference, DetKernel::kSimd}) {
        // Kernel choice applies to the deterministic devices only.
        if (variant == Variant::kNfa || variant == Variant::kSfa) continue;
        const QueryOptions options{
            .variant = variant, .chunks = 4, .kernel = kernel};
        EXPECT_EQ(cand.recognize(text, options).accepted,
                  ref.recognize(text, options).accepted)
            << variant_name(variant) << "/" << kernel_name(kernel) << " on "
            << text.substr(0, 32);
      }
      const QueryOptions options{.variant = variant, .chunks = 4};
      EXPECT_EQ(cand.recognize(text, options).accepted,
                ref.recognize(text, options).accepted)
          << variant_name(variant) << " on " << text.substr(0, 32);
    }
    EXPECT_EQ(cand.count(text).matches, ref.count(text).matches);
    EXPECT_EQ(cand.find_all(text), ref.find_all(text));
  }
}

TEST(Bundle, AllFourProvenancesAgreeOnTheWorkloadSuite) {
  Prng prng(41);
  for (const auto& spec : benchmark_suite()) {
    const Pattern compiled =
        Pattern::from_nfa(glushkov_nfa(spec.regex()), {}, spec.name);
    const FileGuard file{temp_path("sweep_" + spec.name + ".rpb")};
    compiled.save_bundle(file.path);

    const Pattern text = Pattern::deserialize(compiled.serialize());
    const Pattern mapped = Pattern::load_mapped(file.path);
    const std::string image = Pattern::bundle_image({&compiled, 1});
    const Pattern memory =
        Pattern::from_bundle(bundle::MappedBundle::from_memory(image));

    std::vector<std::string> texts = {spec.text(4'000, prng), "", "x",
                                      spec.text(257, prng)};
    expect_same_answers(compiled, text, texts);
    expect_same_answers(compiled, mapped, texts);
    expect_same_answers(compiled, memory, texts);
  }
}

// ------------------------------------------------------- mapping lifetime

TEST(Bundle, MappingOutlivesThePatternThroughSharedOwnership) {
  const FileGuard file{temp_path("lifetime.rpb")};
  Pattern::compile("(ab)*").save_bundle(file.path);

  std::weak_ptr<const bundle::MappedBundle> watch;
  Dfa keeper = [&] {
    const Pattern loaded = Pattern::load_mapped(file.path);
    watch = loaded.mapped_bundle();
    EXPECT_FALSE(watch.expired());
    return loaded.min_dfa();  // copies share the adopted packed view
  }();
  // The Pattern died, but the Dfa copy co-owns the mapping — the adopted
  // pages must stay valid for as long as any machine references them.
  ASSERT_FALSE(watch.expired());
  EXPECT_EQ(keeper.step(keeper.initial(), 0), 1);

  keeper = Dfa::with_identity_alphabet(1);  // drop the last owner
  EXPECT_TRUE(watch.expired());
}

TEST(Bundle, MappedPatternSurvivesUnlinkOfTheFile) {
  const std::string path = temp_path("unlinked.rpb");
  Pattern::compile("ab+a").save_bundle(path);
  const Pattern loaded = Pattern::load_mapped(path);
  ASSERT_EQ(::unlink(path.c_str()), 0);
  // POSIX keeps mapped pages alive past the unlink — a fleet can republish
  // over a served bundle without tearing running queries.
  const Engine engine(loaded);
  EXPECT_TRUE(engine.accepts("abba"));
  EXPECT_FALSE(engine.accepts("aba_"));
}

// ------------------------------------------------------------ multi-pattern

TEST(Bundle, ManyPatternBundleLoadsByIndexAndRejectsOutOfRange) {
  const std::vector<std::string> regexes = {"a+", "(ab)*", "[0-9]{3}"};
  std::vector<Pattern> patterns;
  for (const auto& regex : regexes) patterns.push_back(Pattern::compile(regex));
  const FileGuard file{temp_path("many.rpb")};
  Pattern::save_bundle_many(file.path, patterns);

  const auto bundle = bundle::MappedBundle::open(file.path);
  ASSERT_EQ(bundle->pattern_count(), regexes.size());
  for (std::uint32_t i = 0; i < regexes.size(); ++i) {
    const Pattern loaded = Pattern::from_bundle(bundle, i);
    EXPECT_EQ(loaded.source(), regexes[i]);
    EXPECT_EQ(loaded.serialize(), patterns[i].serialize());
  }
  EXPECT_THROW((void)Pattern::from_bundle(bundle, 3), ValidationError);
  EXPECT_THROW((void)Pattern::load_mapped(file.path, 99), ValidationError);
}

TEST(Bundle, MissingFileAndNonBundleFileAreTypedErrors) {
  EXPECT_THROW((void)Pattern::load_mapped(temp_path("does_not_exist.rpb")),
               std::system_error);
  const FileGuard file{temp_path("not_a_bundle.rpb")};
  {
    std::ofstream out(file.path, std::ios::binary);
    out << "this is not a bundle, it is a text file\n";
  }
  EXPECT_THROW((void)Pattern::load_mapped(file.path), ValidationError);
}

}  // namespace
}  // namespace rispar
