#include "core/ridfa.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "automata/equivalence.hpp"
#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "core/serial_match.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

TEST(Ridfa, Fig3ConstructionShape) {
  // Paper Fig. 3: P = { {0},{1},{2},{0,1},{0,2} }, initials = the three
  // singletons, F_RID = subsets containing NFA state 2.
  const Ridfa ridfa = build_ridfa(testing::fig1_nfa());
  EXPECT_EQ(ridfa.num_states(), 5);
  EXPECT_EQ(ridfa.num_nfa_states(), 3);
  EXPECT_EQ(ridfa.initial_count(), 3);

  // Singletons exist and carry the right contents.
  for (State q = 0; q < 3; ++q) {
    const State p = ridfa.singleton(q);
    EXPECT_EQ(ridfa.contents(p), std::vector<State>{q});
    EXPECT_EQ(ridfa.interface_of(q), p);  // identity before minimization
  }

  // Finality: exactly the states whose contents include 2.
  int final_count = 0;
  for (State p = 0; p < ridfa.num_states(); ++p) {
    const auto& contents = ridfa.contents(p);
    const bool has2 = std::find(contents.begin(), contents.end(), 2) != contents.end();
    EXPECT_EQ(ridfa.is_final(p), has2);
    final_count += ridfa.is_final(p);
  }
  EXPECT_EQ(final_count, 2);  // {2} and {0,2}
}

TEST(Ridfa, StartStateIsSingletonQ0) {
  const Ridfa ridfa = build_ridfa(testing::fig1_nfa());
  EXPECT_EQ(ridfa.start_state(), ridfa.singleton(0));
}

TEST(Ridfa, DeterministicTransitions) {
  const Ridfa ridfa = build_ridfa(testing::fig1_nfa());
  // Fig. 3/4 edges: {2} -b-> {1}; {1} -b-> {0,2}; {0} -a-> {1}.
  const State s2 = ridfa.singleton(2);
  const State s1 = ridfa.singleton(1);
  const State s0 = ridfa.singleton(0);
  EXPECT_EQ(ridfa.step(s2, 1), s1);
  EXPECT_EQ(ridfa.step(s2, 0), kDeadState);
  EXPECT_EQ(ridfa.step(s2, 2), kDeadState);
  EXPECT_EQ(ridfa.step(s0, 0), s1);
  const State s02 = ridfa.step(ridfa.step(s1, 0), 1);  // {1}-a->{0,1}-b->{0,2}
  EXPECT_EQ(ridfa.contents(s02), (std::vector<State>{0, 2}));
}

TEST(Ridfa, InterfaceImageMatchesFig4) {
  // if({{0,2}}) = { {0}, {2} } (paper Fig. 4).
  const Ridfa ridfa = build_ridfa(testing::fig1_nfa());
  State s02 = kDeadState;
  for (State p = 0; p < ridfa.num_states(); ++p)
    if (ridfa.contents(p) == std::vector<State>{0, 2}) s02 = p;
  ASSERT_NE(s02, kDeadState);
  std::vector<State> expected{ridfa.singleton(0), ridfa.singleton(2)};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(ridfa.interface_image({s02}), expected);
}

TEST(Ridfa, RecognizesSameLanguageAsNfaSerially) {
  const Nfa nfa = testing::fig1_nfa();
  const Ridfa ridfa = build_ridfa(nfa);
  std::vector<Symbol> word;
  std::function<void(std::size_t)> rec = [&](std::size_t depth) {
    EXPECT_EQ(serial_match(ridfa, word).accepted, nfa_accepts(nfa, word));
    if (depth == 5) return;
    for (Symbol a = 0; a < 3; ++a) {
      word.push_back(a);
      rec(depth + 1);
      word.pop_back();
    }
  };
  rec(0);
}

TEST(Ridfa, InitialCountEqualsNfaStates) {
  Prng prng(111);
  for (int trial = 0; trial < 5; ++trial) {
    RandomNfaConfig config;
    config.num_states = 10 + static_cast<std::int32_t>(prng.pick_index(30));
    const Nfa nfa = random_nfa(prng, config);
    const Ridfa ridfa = build_ridfa(nfa);
    // Before interface minimization: exactly |Q_N| initials.
    EXPECT_EQ(ridfa.initial_count(), nfa.num_states());
  }
}

TEST(Ridfa, StatesSupersetOfSingleSeedPowerset) {
  // The RI-DFA contains at least every state the one-shot powerset reaches
  // from {q0} (the construction starts from the same seed).
  Prng prng(222);
  const Nfa nfa = random_nfa(prng);
  const Dfa dfa = determinize(nfa);
  const Ridfa ridfa = build_ridfa(nfa);
  EXPECT_GE(ridfa.num_states(), dfa.num_states());
}

TEST(Ridfa, StatsReportShape) {
  const Ridfa ridfa = build_ridfa(testing::fig1_nfa());
  const RidfaStats stats = ridfa_stats(ridfa);
  EXPECT_EQ(stats.nfa_states, 3);
  EXPECT_EQ(stats.ridfa_states, 5);
  EXPECT_EQ(stats.initial_states, 3);
  EXPECT_GT(stats.table_entries, 0u);
}

// Lemma 3.2 (the correctness core): after processing chunks y_1..y_i from
// the singleton starts with join-through-if, the union of the contents of
// PLAS_i equals ρ(q0, y_1...y_i). We verify it on random NFAs and random
// splits by simulating the RID join by hand.
class Lemma32Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma32Property, NstOfPlasEqualsNfaReach) {
  Prng prng(GetParam());
  RandomNfaConfig config;
  config.num_states = 5 + static_cast<std::int32_t>(prng.pick_index(20));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(3));
  const Nfa nfa = random_nfa(prng, config);
  const Ridfa ridfa = build_ridfa(nfa);

  const auto word = testing::random_word(prng, nfa.num_symbols(), 24);
  // Split into 3 chunks of 8.
  std::vector<State> plas;  // CA states
  for (int chunk = 0; chunk < 3; ++chunk) {
    const std::span<const Symbol> span(word.data() + chunk * 8, 8);
    std::vector<State> starts;
    if (chunk == 0) {
      starts.push_back(ridfa.start_state());
    } else {
      starts = ridfa.interface_image(plas);
    }
    std::vector<State> next;
    for (const State start : starts) {
      std::uint64_t ignore = 0;
      const State end =
          run_dfa_span(ridfa.dfa(), start, span.data(), span.size(), ignore);
      if (end != kDeadState) next.push_back(end);
    }
    plas = std::move(next);

    // Nst(PLAS_i) must equal ρ(q0, y_1..y_i).
    Bitset nst(static_cast<std::size_t>(nfa.num_states()));
    for (const State p : plas)
      for (const State q : ridfa.contents(p)) nst.set(static_cast<std::size_t>(q));
    Bitset start_set(static_cast<std::size_t>(nfa.num_states()));
    start_set.set(static_cast<std::size_t>(nfa.initial()));
    const std::vector<Symbol> prefix(word.begin(), word.begin() + (chunk + 1) * 8);
    EXPECT_EQ(nst, nfa_reach(nfa, start_set, prefix)) << "chunk " << chunk;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma32Property, ::testing::Range<std::uint64_t>(0, 20));

TEST(Ridfa, OfDeterministicSourceIsIsomorphicToIt) {
  // Feeding a (trim, partial) DFA back in as an NFA: every subset stays a
  // singleton, so the RI-DFA has exactly the DFA's states and transitions.
  Prng prng(2025);
  RandomNfaConfig config;
  config.num_states = 20;
  const Nfa nfa = random_nfa(prng, config);
  const Dfa min_dfa = minimize_dfa(determinize(nfa));
  const Ridfa ridfa = build_ridfa(dfa_to_nfa(min_dfa));
  EXPECT_EQ(ridfa.num_states(), min_dfa.num_states());
  for (State p = 0; p < ridfa.num_states(); ++p)
    EXPECT_EQ(ridfa.contents(p).size(), 1u);
  EXPECT_EQ(ridfa.dfa().num_transitions(), min_dfa.num_transitions());
}

TEST(Ridfa, InterfaceImageOfEmptyPlasIsEmpty) {
  const Ridfa ridfa = build_ridfa(testing::fig1_nfa());
  EXPECT_TRUE(ridfa.interface_image({}).empty());
}

TEST(Ridfa, TryBuildRespectsGenerousBudget) {
  const auto ridfa = try_build_ridfa(testing::fig1_nfa(), 100);
  ASSERT_TRUE(ridfa.has_value());
  EXPECT_EQ(ridfa->num_states(), 5);
}


}  // namespace
}  // namespace rispar
