#include "parallel/chunking.hpp"

#include <gtest/gtest.h>

namespace rispar {
namespace {

TEST(Chunking, ExactDivision) {
  const auto chunks = split_chunks(12, 4);
  ASSERT_EQ(chunks.size(), 4u);
  for (const auto& chunk : chunks) EXPECT_EQ(chunk.length, 3u);
  EXPECT_EQ(chunks[0].begin, 0u);
  EXPECT_EQ(chunks[3].begin, 9u);
}

TEST(Chunking, RemainderSpreadOverFirstChunks) {
  const auto chunks = split_chunks(10, 4);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].length, 3u);
  EXPECT_EQ(chunks[1].length, 3u);
  EXPECT_EQ(chunks[2].length, 2u);
  EXPECT_EQ(chunks[3].length, 2u);
}

TEST(Chunking, CoversInputWithoutGaps) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (std::size_t c : {1u, 2u, 3u, 10u, 64u}) {
      const auto chunks = split_chunks(n, c);
      std::size_t offset = 0;
      for (const auto& chunk : chunks) {
        EXPECT_EQ(chunk.begin, offset);
        EXPECT_GE(chunk.length, 1u);  // Σ+ requirement
        offset += chunk.length;
      }
      EXPECT_EQ(offset, n);
    }
  }
}

TEST(Chunking, ClampsWhenMoreChunksThanSymbols) {
  const auto chunks = split_chunks(3, 10);
  EXPECT_EQ(chunks.size(), 3u);
}

TEST(Chunking, ZeroInputYieldsNoChunks) {
  EXPECT_TRUE(split_chunks(0, 4).empty());
}

TEST(Chunking, ZeroRequestedClampsToOne) {
  const auto chunks = split_chunks(5, 0);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].length, 5u);
}

TEST(Chunking, SizesDifferByAtMostOne) {
  const auto chunks = split_chunks(101, 7);
  std::size_t lo = 1000, hi = 0;
  for (const auto& chunk : chunks) {
    lo = std::min(lo, chunk.length);
    hi = std::max(hi, chunk.length);
  }
  EXPECT_LE(hi - lo, 1u);
}

}  // namespace
}  // namespace rispar
