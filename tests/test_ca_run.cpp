#include "parallel/ca_run.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"

namespace rispar {
namespace {

std::vector<State> all_states(std::int32_t n) {
  std::vector<State> states(static_cast<std::size_t>(n));
  for (std::int32_t s = 0; s < n; ++s) states[static_cast<std::size_t>(s)] = s;
  return states;
}

TEST(DetChunkRun, SurvivorsAndCounts) {
  const Dfa dfa = minimize_dfa(determinize(testing::fig1_nfa()));
  const std::vector<Symbol> chunk{2, 0, 1};  // "cab"
  const auto starts = all_states(dfa.num_states());
  const DetChunkResult result = run_chunk_det(dfa, chunk, starts);
  // All four DFA states survive "cab" (Fig. 1 bottom) => 12 transitions.
  EXPECT_EQ(result.lambda.size(), 4u);
  EXPECT_EQ(result.transitions, 12u);
}

TEST(DetChunkRun, DeadRunOmittedFromLambda) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  dfa.add_state(true);
  dfa.add_state(true);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 0);  // state 0 loops on 'a'
  // state 1 has no transitions at all
  const std::vector<Symbol> chunk{0, 0};
  const auto starts = all_states(2);
  const DetChunkResult result = run_chunk_det(dfa, chunk, starts);
  ASSERT_EQ(result.lambda.size(), 1u);
  EXPECT_EQ(result.lambda[0], (std::pair<State, State>{0, 0}));
  EXPECT_EQ(result.transitions, 2u);  // dead run contributes 0
}

TEST(DetChunkRun, PartialSurvivalCountsPrefix) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  dfa.add_state(true);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 0);  // dies on 'b'
  const std::vector<Symbol> chunk{0, 0, 1, 0};
  const DetChunkResult result = run_chunk_det(dfa, chunk, all_states(1));
  EXPECT_TRUE(result.lambda.empty());
  EXPECT_EQ(result.transitions, 2u);  // consumed "aa" before dying
}

TEST(DetChunkRun, EmptyChunkMapsStartsToThemselves) {
  const Dfa dfa = testing::fig2_dfa();
  const DetChunkResult result =
      run_chunk_det(dfa, std::span<const Symbol>{}, all_states(2));
  ASSERT_EQ(result.lambda.size(), 2u);
  EXPECT_EQ(result.lambda[0], (std::pair<State, State>{0, 0}));
  EXPECT_EQ(result.lambda[1], (std::pair<State, State>{1, 1}));
  EXPECT_EQ(result.transitions, 0u);
}

TEST(DetChunkRun, ConvergenceProducesSameLambda) {
  Prng prng(99);
  for (int trial = 0; trial < 10; ++trial) {
    RandomNfaConfig config;
    config.num_states = 10 + static_cast<std::int32_t>(prng.pick_index(20));
    const Nfa nfa = random_nfa(prng, config);
    const Dfa dfa = minimize_dfa(determinize(nfa));
    const auto chunk = testing::random_word(prng, dfa.num_symbols(), 40);
    const auto starts = all_states(dfa.num_states());
    const DetChunkResult plain =
        run_chunk_det(dfa, chunk, starts, {.convergence = false});
    const DetChunkResult merged =
        run_chunk_det(dfa, chunk, starts, {.convergence = true});
    EXPECT_EQ(plain.lambda, merged.lambda);
    EXPECT_LE(merged.transitions, plain.transitions);
  }
}

TEST(DetChunkRun, ConvergenceSavesWorkWhenRunsCollide) {
  // Both states step to state 0 on 'a': two runs converge instantly.
  Dfa dfa = Dfa::with_identity_alphabet(1);
  dfa.add_state(true);
  dfa.add_state(false);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 0);
  dfa.set_transition(1, 0, 0);
  const std::vector<Symbol> chunk(16, 0);
  const auto starts = all_states(2);
  const DetChunkResult plain = run_chunk_det(dfa, chunk, starts, {.convergence = false});
  const DetChunkResult merged = run_chunk_det(dfa, chunk, starts, {.convergence = true});
  EXPECT_EQ(plain.transitions, 32u);
  EXPECT_EQ(merged.transitions, 17u);  // 2 on the first symbol, then 1 each
  EXPECT_EQ(plain.lambda, merged.lambda);
}

TEST(DetChunkRun, DuplicateStartsHandledByConvergence) {
  const Dfa dfa = testing::fig2_dfa();
  const std::vector<State> starts{0, 0, 1};
  const std::vector<Symbol> chunk{0};
  const DetChunkResult merged = run_chunk_det(dfa, chunk, starts, {.convergence = true});
  EXPECT_EQ(merged.lambda.size(), 3u);  // both copies of 0 reported
}

TEST(NfaChunkRun, MatchesNfaReachPerStart) {
  Prng prng(123);
  const Nfa nfa = random_nfa(prng);
  const auto chunk = testing::random_word(prng, nfa.num_symbols(), 30);
  const auto starts = all_states(nfa.num_states());
  const NfaChunkResult result = run_chunk_nfa(nfa, chunk, starts);

  std::size_t expected_entries = 0;
  for (const State start : starts) {
    Bitset start_set(static_cast<std::size_t>(nfa.num_states()));
    start_set.set(static_cast<std::size_t>(start));
    const Bitset reached = nfa_reach(nfa, start_set, chunk);
    if (!reached.empty()) ++expected_entries;
    for (const auto& [s, ends] : result.lambda)
      if (s == start) EXPECT_EQ(ends, reached);
  }
  EXPECT_EQ(result.lambda.size(), expected_entries);
}

TEST(NfaChunkRun, TransitionCountMatchesFig1) {
  // Chunk 2 of Fig. 1 ("cab") from starts {0,1,2}: 5 + 4 + 0 = 9 traversals.
  const Nfa nfa = testing::fig1_nfa();
  const std::vector<Symbol> chunk{2, 0, 1};
  const NfaChunkResult result = run_chunk_nfa(nfa, chunk, all_states(3));
  EXPECT_EQ(result.transitions, 9u);
  EXPECT_EQ(result.lambda.size(), 2u);  // the run from 2 dies on 'c'
}

TEST(NfaChunkRun, EmptyChunk) {
  const Nfa nfa = testing::fig1_nfa();
  const NfaChunkResult result =
      run_chunk_nfa(nfa, std::span<const Symbol>{}, all_states(3));
  EXPECT_EQ(result.lambda.size(), 3u);
  for (const auto& [start, ends] : result.lambda) {
    EXPECT_EQ(ends.count(), 1u);
    EXPECT_TRUE(ends.test(static_cast<std::size_t>(start)));
  }
}

}  // namespace
}  // namespace rispar
