#include "parallel/ca_run.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/packed_table.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "core/ridfa.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

std::vector<State> all_states(std::int32_t n) {
  std::vector<State> states(static_cast<std::size_t>(n));
  for (std::int32_t s = 0; s < n; ++s) states[static_cast<std::size_t>(s)] = s;
  return states;
}

TEST(DetChunkRun, SurvivorsAndCounts) {
  const Dfa dfa = minimize_dfa(determinize(testing::fig1_nfa()));
  const std::vector<Symbol> chunk{2, 0, 1};  // "cab"
  const auto starts = all_states(dfa.num_states());
  const DetChunkResult result = run_chunk_det(dfa, chunk, starts);
  // All four DFA states survive "cab" (Fig. 1 bottom) => 12 transitions.
  EXPECT_EQ(result.lambda.size(), 4u);
  EXPECT_EQ(result.transitions, 12u);
}

TEST(DetChunkRun, DeadRunOmittedFromLambda) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  dfa.add_state(true);
  dfa.add_state(true);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 0);  // state 0 loops on 'a'
  // state 1 has no transitions at all
  const std::vector<Symbol> chunk{0, 0};
  const auto starts = all_states(2);
  const DetChunkResult result = run_chunk_det(dfa, chunk, starts);
  ASSERT_EQ(result.lambda.size(), 1u);
  EXPECT_EQ(result.lambda[0], (std::pair<State, State>{0, 0}));
  EXPECT_EQ(result.transitions, 2u);  // dead run contributes 0
}

TEST(DetChunkRun, PartialSurvivalCountsPrefix) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  dfa.add_state(true);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 0);  // dies on 'b'
  const std::vector<Symbol> chunk{0, 0, 1, 0};
  const DetChunkResult result = run_chunk_det(dfa, chunk, all_states(1));
  EXPECT_TRUE(result.lambda.empty());
  EXPECT_EQ(result.transitions, 2u);  // consumed "aa" before dying
}

TEST(DetChunkRun, EmptyChunkMapsStartsToThemselves) {
  const Dfa dfa = testing::fig2_dfa();
  const DetChunkResult result =
      run_chunk_det(dfa, std::span<const Symbol>{}, all_states(2));
  ASSERT_EQ(result.lambda.size(), 2u);
  EXPECT_EQ(result.lambda[0], (std::pair<State, State>{0, 0}));
  EXPECT_EQ(result.lambda[1], (std::pair<State, State>{1, 1}));
  EXPECT_EQ(result.transitions, 0u);
}

TEST(DetChunkRun, ConvergenceProducesSameLambda) {
  Prng prng(99);
  for (int trial = 0; trial < 10; ++trial) {
    RandomNfaConfig config;
    config.num_states = 10 + static_cast<std::int32_t>(prng.pick_index(20));
    const Nfa nfa = random_nfa(prng, config);
    const Dfa dfa = minimize_dfa(determinize(nfa));
    const auto chunk = testing::random_word(prng, dfa.num_symbols(), 40);
    const auto starts = all_states(dfa.num_states());
    const DetChunkResult plain =
        run_chunk_det(dfa, chunk, starts, {.convergence = false});
    const DetChunkResult merged =
        run_chunk_det(dfa, chunk, starts, {.convergence = true});
    EXPECT_EQ(plain.lambda, merged.lambda);
    EXPECT_LE(merged.transitions, plain.transitions);
  }
}

TEST(DetChunkRun, ConvergenceSavesWorkWhenRunsCollide) {
  // Both states step to state 0 on 'a': two runs converge instantly.
  Dfa dfa = Dfa::with_identity_alphabet(1);
  dfa.add_state(true);
  dfa.add_state(false);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 0);
  dfa.set_transition(1, 0, 0);
  const std::vector<Symbol> chunk(16, 0);
  const auto starts = all_states(2);
  const DetChunkResult plain = run_chunk_det(dfa, chunk, starts, {.convergence = false});
  const DetChunkResult merged = run_chunk_det(dfa, chunk, starts, {.convergence = true});
  EXPECT_EQ(plain.transitions, 32u);
  EXPECT_EQ(merged.transitions, 17u);  // 2 on the first symbol, then 1 each
  EXPECT_EQ(plain.lambda, merged.lambda);
}

TEST(DetChunkRun, DuplicateStartsHandledByConvergence) {
  const Dfa dfa = testing::fig2_dfa();
  const std::vector<State> starts{0, 0, 1};
  const std::vector<Symbol> chunk{0};
  const DetChunkResult merged = run_chunk_det(dfa, chunk, starts, {.convergence = true});
  EXPECT_EQ(merged.lambda.size(), 3u);  // both copies of 0 reported
}

// ---------------------------------------------------------------------------
// Kernel-equivalence properties: the fused lockstep / epoch-stamped kernels
// AND the vector-gather kSimd kernels must produce λ maps and transition
// counts identical to the seed implementations over randomized machines,
// starts, and chunk boundaries (whatever gather backend this machine runs).
// ---------------------------------------------------------------------------

void expect_kernels_agree(const Dfa& dfa, std::span<const Symbol> chunk,
                          std::span<const State> starts, bool convergence) {
  const DetChunkResult reference =
      run_chunk_det(dfa, chunk, starts,
                    {.convergence = convergence, .kernel = DetKernel::kReference});
  for (const DetKernel kernel : {DetKernel::kFused, DetKernel::kSimd}) {
    const DetChunkResult candidate =
        run_chunk_det(dfa, chunk, starts, {.convergence = convergence, .kernel = kernel});
    SCOPED_TRACE(kernel_name(kernel));
    EXPECT_EQ(candidate.lambda, reference.lambda);
    EXPECT_EQ(candidate.transitions, reference.transitions);
    if (convergence) EXPECT_EQ(candidate.distinct_ends, reference.distinct_ends);
  }
}

// Random chunk that may contain invalid symbols (kUnmapped and >= k) so the
// blocked-validation path is exercised along with the unchecked inner loops.
std::vector<Symbol> random_chunk_with_aliens(Prng& prng, std::int32_t k,
                                             std::size_t length) {
  std::vector<Symbol> chunk = testing::random_word(prng, k, length);
  if (length > 0 && prng.pick_index(3) == 0) {
    const std::size_t how_many = 1 + prng.pick_index(2);
    for (std::size_t i = 0; i < how_many; ++i)
      chunk[prng.pick_index(length)] = prng.pick_index(2) == 0 ? -1 : k;
  }
  return chunk;
}

TEST(DetKernelEquivalence, RandomDfasAllStartsAllModes) {
  Prng prng(2025);
  for (int trial = 0; trial < 40; ++trial) {
    RandomNfaConfig config;
    config.num_states = 5 + static_cast<std::int32_t>(prng.pick_index(30));
    config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(5));
    const Dfa dfa = minimize_dfa(determinize(random_nfa(prng, config)));
    const auto starts = all_states(dfa.num_states());
    const std::size_t length = prng.pick_index(700);
    const auto chunk = random_chunk_with_aliens(prng, dfa.num_symbols(), length);
    expect_kernels_agree(dfa, chunk, starts, false);
    expect_kernels_agree(dfa, chunk, starts, true);
  }
}

TEST(DetKernelEquivalence, RandomRidfasInterfaceStarts) {
  Prng prng(77);
  for (int trial = 0; trial < 25; ++trial) {
    RandomNfaConfig config;
    config.num_states = 6 + static_cast<std::int32_t>(prng.pick_index(20));
    config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(4));
    const Nfa nfa = random_nfa(prng, config);
    const Ridfa ridfa = build_ridfa(nfa);
    const auto chunk =
        random_chunk_with_aliens(prng, ridfa.num_symbols(), prng.pick_index(400));
    expect_kernels_agree(ridfa.dfa(), chunk, ridfa.initial_states(), false);
    expect_kernels_agree(ridfa.dfa(), chunk, ridfa.initial_states(), true);
  }
}

TEST(DetKernelEquivalence, RandomRegexChunkBoundaries) {
  // Split a longer text at random boundaries and check every sub-chunk, so
  // the equivalence holds for exactly the spans the devices produce.
  Prng prng(4242);
  for (int trial = 0; trial < 15; ++trial) {
    const RePtr re = random_regex(prng);
    const Dfa dfa = minimize_dfa(determinize(glushkov_nfa(re)));
    if (dfa.num_states() == 0) continue;
    const auto starts = all_states(dfa.num_states());
    const auto text = testing::random_word(prng, dfa.num_symbols(), 600);
    std::size_t begin = 0;
    while (begin < text.size()) {
      const std::size_t len =
          std::min<std::size_t>(1 + prng.pick_index(200), text.size() - begin);
      const std::span<const Symbol> chunk(text.data() + begin, len);
      expect_kernels_agree(dfa, chunk, starts, false);
      expect_kernels_agree(dfa, chunk, starts, true);
      begin += len;
    }
  }
}

TEST(DetKernelEquivalence, DuplicateAndRepeatedStarts) {
  Prng prng(31337);
  const Dfa dfa = minimize_dfa(determinize(testing::fig1_nfa()));
  std::vector<State> starts;
  for (int i = 0; i < 12; ++i)
    starts.push_back(static_cast<State>(prng.pick_index(
        static_cast<std::size_t>(dfa.num_states()))));
  const auto chunk = testing::random_word(prng, dfa.num_symbols(), 64);
  expect_kernels_agree(dfa, chunk, starts, false);
  expect_kernels_agree(dfa, chunk, starts, true);
}

TEST(DetKernelEquivalence, EmptyChunkAndEmptyStarts) {
  const Dfa dfa = testing::fig2_dfa();
  const auto starts = all_states(dfa.num_states());
  expect_kernels_agree(dfa, {}, starts, false);
  expect_kernels_agree(dfa, {}, starts, true);
  expect_kernels_agree(dfa, std::vector<Symbol>{0, 1}, {}, false);
  expect_kernels_agree(dfa, std::vector<Symbol>{0, 1}, {}, true);
}

// Chain automaton with `n` states over {advance, die}: state i advances to
// i+1 (wrapping) on symbol 0; symbol 1 is dead everywhere except state 0.
// Big enough state counts force the u16 and i32 packed-table widths.
Dfa chain_dfa(std::int32_t n) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  for (std::int32_t s = 0; s < n; ++s) dfa.add_state(s == n - 1);
  dfa.set_initial(0);
  for (std::int32_t s = 0; s < n; ++s)
    dfa.set_transition(s, 0, (s + 1) % n);
  dfa.set_transition(0, 1, 0);
  return dfa;
}

TEST(DetKernelEquivalence, WideTablesU16) {
  ASSERT_EQ(chain_dfa(300).packed().width(), TableWidth::kU16);
  Prng prng(8);
  const Dfa dfa = chain_dfa(300);
  std::vector<State> starts;
  for (int i = 0; i < 40; ++i)
    starts.push_back(static_cast<State>(prng.pick_index(300)));
  const auto chunk = random_chunk_with_aliens(prng, 2, 500);
  expect_kernels_agree(dfa, chunk, starts, false);
  expect_kernels_agree(dfa, chunk, starts, true);
}

TEST(DetKernelEquivalence, WideTablesI32) {
  const std::int32_t n = 70000;
  const Dfa dfa = chain_dfa(n);
  ASSERT_EQ(dfa.packed().width(), TableWidth::kI32);
  Prng prng(9);
  std::vector<State> starts;
  for (int i = 0; i < 24; ++i)
    starts.push_back(static_cast<State>(prng.pick_index(static_cast<std::size_t>(n))));
  const auto chunk = random_chunk_with_aliens(prng, 2, 300);
  expect_kernels_agree(dfa, chunk, starts, false);
  expect_kernels_agree(dfa, chunk, starts, true);
}

TEST(DetKernelEquivalence, ConvergentDistinctEndsMatchLambdaImage) {
  Prng prng(555);
  for (int trial = 0; trial < 10; ++trial) {
    RandomNfaConfig config;
    config.num_states = 10 + static_cast<std::int32_t>(prng.pick_index(15));
    const Dfa dfa = minimize_dfa(determinize(random_nfa(prng, config)));
    const auto starts = all_states(dfa.num_states());
    const auto chunk = testing::random_word(prng, dfa.num_symbols(), 100);
    const DetChunkResult merged =
        run_chunk_det(dfa, chunk, starts, {.convergence = true});
    std::vector<State> image;
    for (const auto& [start, end] : merged.lambda) {
      (void)start;
      image.push_back(end);
    }
    std::sort(image.begin(), image.end());
    image.erase(std::unique(image.begin(), image.end()), image.end());
    std::vector<State> ends = merged.distinct_ends;
    std::sort(ends.begin(), ends.end());
    EXPECT_EQ(ends, image);
  }
}

TEST(NfaChunkRun, MatchesNfaReachPerStart) {
  Prng prng(123);
  const Nfa nfa = random_nfa(prng);
  const auto chunk = testing::random_word(prng, nfa.num_symbols(), 30);
  const auto starts = all_states(nfa.num_states());
  const NfaChunkResult result = run_chunk_nfa(nfa, chunk, starts);

  std::size_t expected_entries = 0;
  for (const State start : starts) {
    Bitset start_set(static_cast<std::size_t>(nfa.num_states()));
    start_set.set(static_cast<std::size_t>(start));
    const Bitset reached = nfa_reach(nfa, start_set, chunk);
    if (!reached.empty()) ++expected_entries;
    for (const auto& [s, ends] : result.lambda)
      if (s == start) EXPECT_EQ(ends, reached);
  }
  EXPECT_EQ(result.lambda.size(), expected_entries);
}

TEST(NfaChunkRun, TransitionCountMatchesFig1) {
  // Chunk 2 of Fig. 1 ("cab") from starts {0,1,2}: 5 + 4 + 0 = 9 traversals.
  const Nfa nfa = testing::fig1_nfa();
  const std::vector<Symbol> chunk{2, 0, 1};
  const NfaChunkResult result = run_chunk_nfa(nfa, chunk, all_states(3));
  EXPECT_EQ(result.transitions, 9u);
  EXPECT_EQ(result.lambda.size(), 2u);  // the run from 2 dies on 'c'
}

TEST(NfaChunkRun, EmptyChunk) {
  const Nfa nfa = testing::fig1_nfa();
  const NfaChunkResult result =
      run_chunk_nfa(nfa, std::span<const Symbol>{}, all_states(3));
  EXPECT_EQ(result.lambda.size(), 3u);
  for (const auto& [start, ends] : result.lambda) {
    EXPECT_EQ(ends.count(), 1u);
    EXPECT_TRUE(ends.test(static_cast<std::size_t>(start)));
  }
}

}  // namespace
}  // namespace rispar
