// The find_all / PatternSet acceptance properties (ISSUE 3):
//  * Engine::find positions == the naive serial reference scan for every
//    variant (which find does not consult — looped anyway to prove it),
//    chunk count {1, 2, 7, 64}, convergence on/off, and both kernels;
//  * count(text).matches == find_all(text).size();
//  * offset/limit page the payload without changing the total;
//  * PatternSet over N patterns == N independent Engine runs merged, while
//    sharing one pool;
//  * concurrent read-only callers on one shared Engine / PatternSet.
#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "engine/pattern_set.hpp"
#include "parallel/match_count.hpp"
#include "util/prng.hpp"
#include "workloads/suite.hpp"

namespace rispar {
namespace {

std::vector<Match> serial_oracle(const Engine& engine, const std::string& text) {
  const Dfa& searcher = engine.searcher();
  return find_matches_serial(searcher, searcher.symbols().translate(text)).positions;
}

TEST(FindAll, ReportsEndAndSeparatorBegin) {
  const Engine engine(Pattern::compile("ab"));
  // "xxabyab": occurrences of "ab" end at 4 and 7; the scan re-enters the
  // initial state after every byte that cannot extend a partial match.
  const std::vector<Match> matches = engine.find_all("xxabyab");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (Match{0, 2, 4}));
  EXPECT_EQ(matches[1], (Match{0, 5, 7}));
}

TEST(FindAll, OverlapsCountedAndChainedPartialsWidenBegin) {
  const Engine engine(Pattern::compile("aa"));
  // "aaaa": occurrences end at 2, 3, 4. Partial occurrences chain (every
  // position starts a new candidate), so the documented begin is the last
  // separator — position 0 for all three.
  const std::vector<Match> matches = engine.find_all("aaaa");
  ASSERT_EQ(matches.size(), 3u);
  for (std::size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(matches[i].begin, 0u);
    EXPECT_EQ(matches[i].end, i + 2);
  }
}

TEST(FindAll, EmptyTextAndNoMatch) {
  const Engine engine(Pattern::compile("abc"));
  EXPECT_TRUE(engine.find_all("").empty());
  EXPECT_TRUE(engine.find_all("ababab").empty());
  const QueryResult result = engine.find("ababab");
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.matches, 0u);
}

TEST(FindAll, CountIsFindAllSizeConsistent) {
  const Engine engine(Pattern::compile("(ab|ba)"));
  for (const char* text : {"abbaabba", "xxabyabzba", "bbbb", ""}) {
    EXPECT_EQ(engine.count(text).matches, engine.find_all(text).size()) << text;
  }
}

TEST(FindAll, PagingWindowsThePayloadNotTheTotal) {
  const Engine engine(Pattern::compile("ab"));
  std::string text;
  for (int i = 0; i < 10; ++i) text += "ab.";
  const std::vector<Match> all = engine.find_all(text);
  ASSERT_EQ(all.size(), 10u);

  const QueryResult page = engine.find(text, {.chunks = 4, .offset = 3, .limit = 4});
  EXPECT_EQ(page.matches, 10u);  // the total survives paging
  ASSERT_EQ(page.positions.size(), 4u);
  for (std::size_t i = 0; i < page.positions.size(); ++i)
    EXPECT_EQ(page.positions[i], all[i + 3]);

  const QueryResult tail = engine.find(text, {.offset = 8});
  EXPECT_EQ(tail.positions.size(), 2u);
  const QueryResult beyond = engine.find(text, {.offset = 64});
  EXPECT_TRUE(beyond.positions.empty());
  EXPECT_EQ(beyond.matches, 10u);
  const QueryResult none = engine.find(text, {.limit = 0});
  EXPECT_TRUE(none.positions.empty());
  EXPECT_EQ(none.matches, 10u);
}

TEST(FindAll, PagingRejectedWhereNotHonored) {
  const Engine engine(Pattern::compile("ab"));
  EXPECT_THROW(engine.recognize("ab", {.limit = 1}), QueryError);
  EXPECT_THROW(engine.recognize("ab", {.offset = 1}), QueryError);
  EXPECT_THROW(engine.count("ab", {.offset = 1}), QueryError);
  EXPECT_THROW(engine.stream({.limit = 1}), QueryError);
  // find rejects what IT cannot honor.
  EXPECT_THROW(engine.find("ab", {.lookback = 4}), QueryError);
  EXPECT_THROW(engine.find("ab", {.tree_join = true}), QueryError);
}

// The acceptance matrix: positions equal the serial reference for every
// variant (not consulted — proven by sweeping it), chunk count {1,2,7,64},
// convergence on/off, and both kernels.
class FindAllEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FindAllEquivalence, ParallelEqualsSerialOracleEverywhere) {
  Prng prng(GetParam());
  const std::vector<std::string> regexes{"ab", "aa", "(ab|ba)*a", "a(b|c)*d",
                                         "<h3>"};
  const std::string& regex = regexes[prng.pick_index(regexes.size())];
  const Engine engine(Pattern::compile(regex), {.threads = 4});

  // Random byte text over a small alphabet that exercises both matching
  // and separator bytes (plus aliens for the searcher's extended classes).
  static const char kBytes[] = "abcd<h3>/ x";
  std::string text;
  const std::size_t length = 1 + prng.pick_index(300);
  for (std::size_t i = 0; i < length; ++i)
    text += kBytes[prng.pick_index(sizeof(kBytes) - 1)];

  const std::vector<Match> oracle = serial_oracle(engine, text);
  for (const Variant variant :
       {Variant::kDfa, Variant::kNfa, Variant::kRid, Variant::kSfa}) {
    for (const std::size_t chunks : {1u, 2u, 7u, 64u}) {
      for (const bool convergence : {false, true}) {
        for (const DetKernel kernel :
             {DetKernel::kFused, DetKernel::kReference, DetKernel::kSimd}) {
          const QueryResult result =
              engine.find(text, {.variant = variant,
                                 .chunks = chunks,
                                 .convergence = convergence,
                                 .kernel = kernel});
          EXPECT_EQ(result.positions, oracle)
              << "regex=" << regex << " text=" << text << " chunks=" << chunks
              << " conv=" << convergence << " kernel=" << kernel_name(kernel);
          EXPECT_EQ(result.matches, oracle.size());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FindAllEquivalence,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(FindAll, WorkloadTextMatchesNaiveSubstringSearch) {
  // Every <h3> in the bible workload, positioned: ends/begins must equal
  // the naive std::string::find scan (the pattern has no self-overlap, so
  // begin is exact here, not just a bound).
  const Engine engine(Pattern::compile("<h3>"));
  Prng prng(11);
  const std::string text = bible_workload().text(50'000, prng);
  const std::vector<Match> matches = engine.find_all(text, {.chunks = 16});
  std::vector<Match> expected;
  for (std::size_t pos = text.find("<h3>"); pos != std::string::npos;
       pos = text.find("<h3>", pos + 1))
    expected.push_back({0, pos, pos + 4});
  EXPECT_EQ(matches, expected);
  EXPECT_GT(matches.size(), 0u);

  // The same large text through every kernel/convergence/chunking — deep
  // merge chains and chunk-boundary separators only show up at this size.
  for (const std::size_t chunks : {16u, 64u}) {
    for (const bool convergence : {false, true}) {
      for (const DetKernel kernel :
           {DetKernel::kFused, DetKernel::kReference, DetKernel::kSimd}) {
        EXPECT_EQ(engine.find_all(text, {.chunks = chunks,
                                         .convergence = convergence,
                                         .kernel = kernel}),
                  expected)
            << "chunks=" << chunks << " conv=" << convergence
            << " kernel=" << kernel_name(kernel);
      }
    }
  }
}

std::vector<Match> merged_engine_runs(const std::vector<std::string>& regexes,
                                      const std::string& text,
                                      const QueryOptions& options = {}) {
  std::vector<Match> merged;
  for (std::size_t p = 0; p < regexes.size(); ++p) {
    const Engine engine(Pattern::compile(regexes[p]));
    for (Match m : engine.find_all(text, options)) {
      m.pattern_id = static_cast<std::uint32_t>(p);
      merged.push_back(m);
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Match& a, const Match& b) {
    if (a.end != b.end) return a.end < b.end;
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.pattern_id < b.pattern_id;
  });
  return merged;
}

TEST(PatternSet, EqualsIndependentEngineRunsMerged) {
  const std::vector<std::string> regexes{"ab", "ba", "aa", "(ab|ba)*a"};
  const PatternSet set =
      PatternSet::compile({"ab", "ba", "aa", "(ab|ba)*a"}, {.threads = 4});
  ASSERT_EQ(set.size(), 4u);

  Prng prng(3);
  for (int trial = 0; trial < 8; ++trial) {
    std::string text;
    const std::size_t length = prng.pick_index(200);
    for (std::size_t i = 0; i < length; ++i) text += "ab x"[prng.pick_index(4)];
    for (const std::size_t chunks : {1u, 7u}) {
      const std::vector<Match> matches = set.find_all(text, {.chunks = chunks});
      EXPECT_EQ(matches, merged_engine_runs(regexes, text, {.chunks = chunks}))
          << "text=" << text << " chunks=" << chunks;
    }
  }
}

TEST(PatternSet, FindReportsPerPatternTaggedTotals) {
  const PatternSet set = PatternSet::compile({"ab", "b"});
  const QueryResult result = set.find("abab");
  // "ab" ends at 2, 4; "b" ends at 2, 4 — merged ascending (end, id).
  EXPECT_EQ(result.matches, 4u);
  ASSERT_EQ(result.positions.size(), 4u);
  EXPECT_EQ(result.positions[0].end, 2u);
  EXPECT_EQ(result.positions[1].end, 2u);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.positions[0].pattern_id, 0u);
  EXPECT_EQ(result.positions[1].pattern_id, 1u);
}

TEST(PatternSet, BatchFanOutMatchesSingleTextQueries) {
  const PatternSet set = PatternSet::compile({"ab", "aa"}, {.threads = 4});
  const std::vector<std::string> storage{"abab", "", "aaaa", "xbxa", "abba"};
  std::vector<std::string_view> texts(storage.begin(), storage.end());
  const std::vector<QueryResult> batch =
      set.find_all(std::span<const std::string_view>(texts), {.chunks = 3});
  ASSERT_EQ(batch.size(), storage.size());
  for (std::size_t t = 0; t < storage.size(); ++t) {
    const QueryResult single = set.find(storage[t], {.chunks = 3});
    EXPECT_EQ(batch[t].positions, single.positions) << storage[t];
    EXPECT_EQ(batch[t].matches, single.matches) << storage[t];
  }
}

TEST(PatternSet, PagingAppliesToTheMergedStream) {
  const PatternSet set = PatternSet::compile({"ab", "b"});
  const std::vector<Match> all = set.find_all("abab");
  ASSERT_EQ(all.size(), 4u);
  const QueryResult page = set.find("abab", {.offset = 1, .limit = 2});
  EXPECT_EQ(page.matches, 4u);
  ASSERT_EQ(page.positions.size(), 2u);
  EXPECT_EQ(page.positions[0], all[1]);
  EXPECT_EQ(page.positions[1], all[2]);
}

TEST(PatternSet, RejectsUnsupportedKnobs) {
  const PatternSet set = PatternSet::compile({"ab"});
  EXPECT_THROW(set.find("ab", {.lookback = 2}), QueryError);
  EXPECT_THROW(set.find("ab", {.tree_join = true}), QueryError);
}

// The concurrent-caller smoke tests (ISSUE 3 small fix): one shared
// Engine / PatternSet, many querying threads, every result exact.
TEST(ConcurrentQueries, SharedEngineServesManyThreads) {
  const Engine engine(Pattern::compile("(ab|ba)"), {.threads = 4});
  const std::string text = "abbaabbaxxabba";
  const std::vector<Match> expected = engine.find_all(text, {.chunks = 4});
  const std::uint64_t expected_count = engine.count(text).matches;
  ASSERT_FALSE(expected.empty());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        if (engine.find_all(text, {.chunks = 4}) != expected) ++failures;
        if (engine.count(text).matches != expected_count) ++failures;
        if (!engine.recognize(text, {.variant = Variant::kDfa}).accepted !=
            !engine.accepts(text))
          ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentQueries, SharedPatternSetServesManyThreads) {
  const PatternSet set = PatternSet::compile({"ab", "ba", "aa"}, {.threads = 4});
  const std::string text = "abbaabbaaab";
  const std::vector<Match> expected = set.find_all(text, {.chunks = 3});
  ASSERT_FALSE(expected.empty());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i)
        if (set.find_all(text, {.chunks = 3}) != expected) ++failures;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentQueries, MixedOptionsStressOnSharedEngineAndSet) {
  // The work-stealing shape: one Engine and one PatternSet sharing nothing
  // but their pools, hammered from many threads with varying chunk counts,
  // convergence and all three kernels at once — batches interleave in the
  // pools instead of queueing, and every answer must still be exact.
  const Engine engine(Pattern::compile("(ab|ba)*a"), {.threads = 3});
  const PatternSet set = PatternSet::compile({"ab", "aab", "<h3>"}, {.threads = 3});
  Prng prng(2026);
  std::string text;
  static const char kBytes[] = "aab<h3> b";
  for (int i = 0; i < 4000; ++i) text += kBytes[prng.pick_index(sizeof(kBytes) - 1)];

  const std::vector<Match> engine_expected = engine.find_all(text, {.chunks = 7});
  const std::vector<Match> set_expected = set.find_all(text, {.chunks = 7});

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      static constexpr DetKernel kKernels[] = {
          DetKernel::kFused, DetKernel::kReference, DetKernel::kSimd};
      for (int i = 0; i < 15; ++i) {
        const QueryOptions options{
            .chunks = static_cast<std::size_t>(1 + (t + i) % 16),
            .convergence = (t + i) % 2 == 0,
            .kernel = kKernels[(t + i) % 3]};
        if (engine.find_all(text, options) != engine_expected) ++failures;
        if (set.find_all(text, options) != set_expected) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace rispar
