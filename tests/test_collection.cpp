#include "workloads/collection.hpp"

#include <gtest/gtest.h>

#include "automata/minimize.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/subset.hpp"
#include "core/interface_min.hpp"
#include "core/serial_match.hpp"
#include "helpers.hpp"

namespace rispar {
namespace {

TEST(Collection, DeterministicPerIndex) {
  CollectionConfig config;
  const Nfa a = collection_nfa(config, 17);
  const Nfa b = collection_nfa(config, 17);
  EXPECT_EQ(a.num_states(), b.num_states());
  EXPECT_EQ(a.num_edges(), b.num_edges());
}

TEST(Collection, IndependentOfCount) {
  CollectionConfig small;
  small.count = 10;
  CollectionConfig large = small;
  large.count = 100;
  EXPECT_EQ(collection_nfa(small, 5).num_edges(), collection_nfa(large, 5).num_edges());
}

TEST(Collection, SizesWithinConfiguredRange) {
  CollectionConfig config;
  for (int i = 0; i < 20; ++i) {
    const Nfa nfa = collection_nfa(config, i);
    EXPECT_GE(nfa.num_states(), config.min_states);
    EXPECT_LE(nfa.num_states(), config.max_states + 1);
    EXPECT_GE(nfa.num_symbols(), config.min_symbols);
    EXPECT_LE(nfa.num_symbols(), config.max_symbols);
  }
}

TEST(Collection, MakeCollectionHasRequestedCount) {
  CollectionConfig config;
  config.count = 12;
  EXPECT_EQ(make_collection(config).size(), 12u);
}

TEST(Collection, AllStatesReachable) {
  CollectionConfig config;
  for (int i = 0; i < 10; ++i) {
    const Nfa nfa = collection_nfa(config, i);
    EXPECT_EQ(trim_unreachable(nfa).num_states(), nfa.num_states()) << "index " << i;
  }
}

TEST(Collection, PipelineEndToEndOnSamples) {
  // The Tab. 2 measurement pipeline: determinize, minimize, build RI-DFA,
  // reduce interface — all must succeed and preserve the language.
  CollectionConfig config;
  Prng prng(5);
  for (int i = 0; i < 6; ++i) {
    const Nfa nfa = collection_nfa(config, i);
    const Dfa min_dfa = minimize_dfa(determinize(nfa));
    Ridfa ridfa = build_ridfa(nfa);
    minimize_interface(ridfa);
    EXPECT_LE(ridfa.initial_count(), nfa.num_states());
    for (int trial = 0; trial < 10; ++trial) {
      const auto word =
          testing::random_word(prng, nfa.num_symbols(), prng.pick_index(40));
      std::uint64_t ignore = 0;
      const State end = run_dfa_span(ridfa.dfa(), ridfa.start_state(), word.data(),
                                     word.size(), ignore);
      const bool rid_accepts = end != kDeadState && ridfa.is_final(end);
      EXPECT_EQ(rid_accepts, min_dfa.accepts(word)) << "index " << i;
    }
  }
}

TEST(Collection, InterfaceReductionIsCommon) {
  // The Tab. 2 claim: the RI-DFA interface is smaller than the minimal DFA
  // for (nearly) every machine. Check a sample of the synthetic collection.
  CollectionConfig config;
  int reduced = 0, total = 0;
  for (int i = 0; i < 15; ++i) {
    const Nfa nfa = collection_nfa(config, i);
    const Dfa min_dfa = minimize_dfa(determinize(nfa));
    Ridfa ridfa = build_ridfa(nfa);
    minimize_interface(ridfa);
    ++total;
    if (ridfa.initial_count() < min_dfa.num_states()) ++reduced;
  }
  EXPECT_GT(reduced * 100, total * 60)
      << "most machines should have a reduced interface";
}

}  // namespace
}  // namespace rispar
