#include "automata/symbol_map.hpp"

#include <gtest/gtest.h>

namespace rispar {
namespace {

TEST(SymbolMap, IdentitySmallAlphabet) {
  const SymbolMap map = SymbolMap::identity(3);
  EXPECT_EQ(map.num_symbols(), 3);
  EXPECT_EQ(map.symbol_of('a'), 0);
  EXPECT_EQ(map.symbol_of('b'), 1);
  EXPECT_EQ(map.symbol_of('c'), 2);
  EXPECT_EQ(map.symbol_of('z'), SymbolMap::kUnmapped);
  EXPECT_EQ(map.representative(1), 'b');
}

TEST(SymbolMap, BuildSingleClass) {
  ByteSet digits;
  for (char c = '0'; c <= '9'; ++c) digits.set(static_cast<unsigned char>(c));
  const SymbolMap map = SymbolMap::build({digits});
  EXPECT_EQ(map.num_symbols(), 1);
  EXPECT_EQ(map.symbol_of('0'), map.symbol_of('9'));
  EXPECT_EQ(map.symbol_of('a'), SymbolMap::kUnmapped);
}

TEST(SymbolMap, BuildRefinesOverlaps) {
  ByteSet lower, vowels;
  for (char c = 'a'; c <= 'z'; ++c) lower.set(static_cast<unsigned char>(c));
  for (const char c : {'a', 'e', 'i', 'o', 'u'})
    vowels.set(static_cast<unsigned char>(c));
  const SymbolMap map = SymbolMap::build({lower, vowels});
  // Two classes: vowels (in both) and consonants (lower only).
  EXPECT_EQ(map.num_symbols(), 2);
  EXPECT_EQ(map.symbol_of('a'), map.symbol_of('e'));
  EXPECT_EQ(map.symbol_of('b'), map.symbol_of('z'));
  EXPECT_NE(map.symbol_of('a'), map.symbol_of('b'));
}

TEST(SymbolMap, BuildDisjointClasses) {
  ByteSet a, b;
  a.set('a');
  b.set('b');
  const SymbolMap map = SymbolMap::build({a, b});
  EXPECT_EQ(map.num_symbols(), 2);
  EXPECT_NE(map.symbol_of('a'), map.symbol_of('b'));
}

TEST(SymbolMap, SymbolsOfIntersection) {
  ByteSet lower, vowels;
  for (char c = 'a'; c <= 'z'; ++c) lower.set(static_cast<unsigned char>(c));
  for (const char c : {'a', 'e', 'i', 'o', 'u'})
    vowels.set(static_cast<unsigned char>(c));
  const SymbolMap map = SymbolMap::build({lower, vowels});
  EXPECT_EQ(map.symbols_of(vowels).size(), 1u);
  EXPECT_EQ(map.symbols_of(lower).size(), 2u);
}

TEST(SymbolMap, TranslateMapsEveryByte) {
  const SymbolMap map = SymbolMap::identity(2);
  const auto symbols = map.translate("abz");
  ASSERT_EQ(symbols.size(), 3u);
  EXPECT_EQ(symbols[0], 0);
  EXPECT_EQ(symbols[1], 1);
  EXPECT_EQ(symbols[2], SymbolMap::kUnmapped);
}

TEST(SymbolMap, RepresentativesRoundTrip) {
  ByteSet a, bc;
  a.set('a');
  bc.set('b');
  bc.set('c');
  const SymbolMap map = SymbolMap::build({a, bc});
  for (std::int32_t s = 0; s < map.num_symbols(); ++s)
    EXPECT_EQ(map.symbol_of(map.representative(s)), s);
}

TEST(SymbolMap, FullByteCoverage) {
  ByteSet all;
  all.set();
  const SymbolMap map = SymbolMap::build({all});
  EXPECT_EQ(map.num_symbols(), 1);
  for (int b = 0; b < 256; ++b)
    EXPECT_EQ(map.symbol_of(static_cast<unsigned char>(b)), 0);
}

TEST(FirstInvalidSymbol, EmptyAndAllValid) {
  EXPECT_EQ(first_invalid_symbol({}, 4), 0u);
  const std::vector<std::int32_t> valid{0, 3, 1, 2, 3, 0};
  EXPECT_EQ(first_invalid_symbol(valid, 4), valid.size());
}

TEST(FirstInvalidSymbol, FindsNegativeAndOutOfRange) {
  EXPECT_EQ(first_invalid_symbol(std::vector<std::int32_t>{-1, 0, 1}, 4), 0u);
  EXPECT_EQ(first_invalid_symbol(std::vector<std::int32_t>{0, 4, 1}, 4), 1u);
  EXPECT_EQ(first_invalid_symbol(std::vector<std::int32_t>{0, 1, 2, 3, -7}, 4), 4u);
}

TEST(FirstInvalidSymbol, BlockBoundaries) {
  // The scan validates 64-symbol blocks; place the first invalid symbol on
  // every interesting boundary and make sure the earliest one is reported.
  for (const std::size_t at : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    std::vector<std::int32_t> chunk(201, 1);
    chunk[at] = SymbolMap::kUnmapped;
    EXPECT_EQ(first_invalid_symbol(chunk, 2), at) << "invalid at " << at;
  }
  std::vector<std::int32_t> two(130, 0);
  two[70] = 5;
  two[128] = -1;
  EXPECT_EQ(first_invalid_symbol(two, 3), 70u);
}

}  // namespace
}  // namespace rispar
