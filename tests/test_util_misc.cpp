#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace rispar {
namespace {

// ------------------------------------------------------------------ Table

TEST(Table, RendersHeaderAndRows) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  std::ostringstream out;
  table.render(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  std::ostringstream out;
  table.render(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(Table, NumericCells) {
  EXPECT_EQ(Table::cell(static_cast<std::int64_t>(-7)), "-7");
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::ratio(3.0, 2.0), "1.50");
  EXPECT_EQ(Table::ratio(1.0, 0.0), "n/a");
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, BinsLikeTable2) {
  // The paper's Tab. 2 bins: width 0.1 from 0.5 upward.
  Histogram histogram(0.5, 0.1, 9);
  histogram.add(0.55);  // bin 0
  histogram.add(0.59);  // bin 0
  histogram.add(0.65);  // bin 1
  histogram.add(1.05);  // bin 5
  histogram.add(0.3);   // underflow
  histogram.add(2.5);   // overflow
  EXPECT_EQ(histogram.bin_count(0), 2u);
  EXPECT_EQ(histogram.bin_count(1), 1u);
  EXPECT_EQ(histogram.bin_count(5), 1u);
  EXPECT_EQ(histogram.underflow(), 1u);
  EXPECT_EQ(histogram.overflow(), 1u);
  EXPECT_EQ(histogram.total(), 6u);
}

TEST(Histogram, CountBelowSplit) {
  Histogram histogram(0.5, 0.1, 9);
  histogram.add(0.55);
  histogram.add(0.95);
  histogram.add(1.05);
  histogram.add(0.2);  // underflow counts as below
  EXPECT_EQ(histogram.count_below(1.0), 3u);
}

TEST(Histogram, BinLabels) {
  Histogram histogram(0.5, 0.1, 2);
  EXPECT_EQ(histogram.bin_label(0), "0.5 - 0.6");
  EXPECT_EQ(histogram.bin_label(1), "0.6 - 0.7");
}

// -------------------------------------------------------------------- Cli

TEST(Cli, ParsesOptionsAndFlags) {
  Cli cli("prog", "test");
  cli.add_option("size", "10", "a size");
  cli.add_option("name", "x", "a name");
  cli.add_flag("fast", "go fast");
  const char* argv[] = {"prog", "--size", "42", "--fast", "--name=abc"};
  ASSERT_TRUE(cli.parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("size"), 42);
  EXPECT_EQ(cli.get("name"), "abc");
  EXPECT_TRUE(cli.get_flag("fast"));
}

TEST(Cli, DefaultsApply) {
  Cli cli("prog", "test");
  cli.add_option("size", "10", "a size");
  cli.add_flag("fast", "go fast");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("size"), 10);
  EXPECT_FALSE(cli.get_flag("fast"));
}

TEST(Cli, RejectsUnknownOption) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--mystery", "1"};
  EXPECT_FALSE(cli.parse(3, const_cast<char**>(argv)));
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, const_cast<char**>(argv)));
}

TEST(Cli, IntListParsing) {
  Cli cli("prog", "test");
  cli.add_option("threads", "2,4,8", "thread sweep");
  const char* argv[] = {"prog", "--threads", "1,16,32"};
  ASSERT_TRUE(cli.parse(3, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int_list("threads"), (std::vector<std::int64_t>{1, 16, 32}));
}

TEST(Cli, DoubleOption) {
  Cli cli("prog", "test");
  cli.add_option("scale", "0.5", "scale factor");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.5);
}

// -------------------------------------------------------------- Stopwatch

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch clock;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(clock.seconds(), 0.0);
  EXPECT_GE(clock.micros(), clock.millis());
}

TEST(Stopwatch, TimeAverageRunsAtLeastOnce) {
  int calls = 0;
  const double avg = time_average([&] { ++calls; }, /*min_seconds=*/0.0, /*min_reps=*/1);
  EXPECT_GE(calls, 1);
  EXPECT_GE(avg, 0.0);
}

TEST(Stopwatch, TimeAverageHonorsMinReps) {
  int calls = 0;
  time_average([&] { ++calls; }, /*min_seconds=*/0.0, /*min_reps=*/5);
  EXPECT_GE(calls, 5);
}

}  // namespace
}  // namespace rispar
