#include "automata/timbuk.hpp"

#include <gtest/gtest.h>

#include "automata/equivalence.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/random_nfa.hpp"
#include "helpers.hpp"

namespace rispar {
namespace {

constexpr char kSample[] = R"(
Ops i:0 a:1 b:1

Automaton A
States q0 q1 q2
Final States q2
Transitions
i() -> q0
a(q0) -> q1
b(q1) -> q2
a(q1) -> q1
)";

TEST(Timbuk, ParsesSample) {
  const Nfa nfa = timbuk_from_string(kSample);
  EXPECT_EQ(nfa.num_states(), 3);
  EXPECT_EQ(nfa.num_symbols(), 2);
  EXPECT_EQ(nfa.initial(), 0);
  EXPECT_TRUE(nfa.is_final(2));
  // a a b is accepted (a=symbol 0 in first-seen order).
  EXPECT_TRUE(nfa_accepts(nfa, std::vector<Symbol>{0, 0, 1}));
  EXPECT_FALSE(nfa_accepts(nfa, std::vector<Symbol>{1}));
}

TEST(Timbuk, MultipleInitialStatesFoldBehindEpsilon) {
  const Nfa nfa = timbuk_from_string(R"(
Automaton multi
States p q r
Final States r
Transitions
i() -> p
i() -> q
a(p) -> r
b(q) -> r
)");
  EXPECT_TRUE(nfa.has_epsilon());
  EXPECT_TRUE(nfa_accepts(nfa, std::vector<Symbol>{0}));  // via p
  EXPECT_TRUE(nfa_accepts(nfa, std::vector<Symbol>{1}));  // via q
  EXPECT_FALSE(nfa_accepts(nfa, std::vector<Symbol>{0, 1}));
}

TEST(Timbuk, CommentsAndAritySuffixesTolerated) {
  const Nfa nfa = timbuk_from_string(R"(
# a comment
Ops i:0 a:1
Automaton C
States q0:0 q1:0   # trailing comment
Final States q1
Transitions
i() -> q0
a(q0) -> q1
)");
  EXPECT_EQ(nfa.num_states(), 2);
  EXPECT_TRUE(nfa_accepts(nfa, std::vector<Symbol>{0}));
}

TEST(Timbuk, MalformedInputsThrow) {
  EXPECT_THROW(timbuk_from_string(""), std::runtime_error);
  EXPECT_THROW(timbuk_from_string("Automaton A\nStates q0\nFinal States q0\n"),
               std::runtime_error);  // no Transitions section
  EXPECT_THROW(timbuk_from_string(R"(
Automaton A
States q0
Final States q0
Transitions
a(q0) -> q0
)"),
               std::runtime_error);  // no initial leaf rule
  EXPECT_THROW(timbuk_from_string(R"(
Automaton A
States q0
Final States q0
Transitions
i() -> q9
)"),
               std::runtime_error);  // unknown state
  EXPECT_THROW(timbuk_from_string(R"(
Automaton A
States q0
Final States q0
Transitions
broken line here
)"),
               std::runtime_error);
}

TEST(Timbuk, RoundTripPreservesLanguage) {
  Prng prng(99);
  for (int trial = 0; trial < 8; ++trial) {
    RandomNfaConfig config;
    config.num_states = 5 + static_cast<std::int32_t>(prng.pick_index(30));
    config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(4));
    const Nfa nfa = random_nfa(prng, config);
    const Nfa loaded = timbuk_from_string(timbuk_to_string(nfa));
    EXPECT_EQ(loaded.num_states(), nfa.num_states());
    EXPECT_TRUE(nfa_equivalent(nfa, loaded));
  }
}

TEST(Timbuk, SaveRejectsEpsilonEdges) {
  Nfa nfa = Nfa::with_identity_alphabet(1);
  nfa.add_state();
  nfa.add_state(true);
  nfa.add_epsilon(0, 1);
  EXPECT_THROW(timbuk_to_string(nfa), std::invalid_argument);
}

TEST(Timbuk, Fig1RoundTrip) {
  const Nfa nfa = testing::fig1_nfa();
  const Nfa loaded = timbuk_from_string(timbuk_to_string(nfa));
  EXPECT_TRUE(nfa_equivalent(nfa, loaded));
}

}  // namespace
}  // namespace rispar
