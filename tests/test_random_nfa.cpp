#include "automata/random_nfa.hpp"

#include <gtest/gtest.h>

#include "automata/nfa_ops.hpp"
#include "util/prng.hpp"

namespace rispar {
namespace {

TEST(RandomNfa, DeterministicForSeed) {
  Prng a(1), b(1);
  const Nfa x = random_nfa(a);
  const Nfa y = random_nfa(b);
  EXPECT_EQ(x.num_states(), y.num_states());
  EXPECT_EQ(x.num_edges(), y.num_edges());
}

TEST(RandomNfa, RespectsRequestedSize) {
  Prng prng(2);
  RandomNfaConfig config;
  config.num_states = 55;
  config.num_symbols = 3;
  const Nfa nfa = random_nfa(prng, config);
  EXPECT_EQ(nfa.num_states(), 55);
  EXPECT_EQ(nfa.num_symbols(), 3);
}

TEST(RandomNfa, EveryStateReachable) {
  Prng prng(3);
  RandomNfaConfig config;
  config.num_states = 80;
  const Nfa nfa = random_nfa(prng, config);
  const Nfa trimmed = trim_unreachable(nfa);
  EXPECT_EQ(trimmed.num_states(), nfa.num_states());
}

TEST(RandomNfa, HasAtLeastOneFinal) {
  Prng prng(4);
  RandomNfaConfig config;
  config.final_fraction = 0.0;
  const Nfa nfa = random_nfa(prng, config);
  EXPECT_GE(nfa.finals().count(), 1u);
}

TEST(RandomNfa, NondeterminismKnobWorks) {
  Prng lo_prng(5), hi_prng(5);
  RandomNfaConfig lo;
  lo.num_states = 100;
  lo.density = 2.0;
  lo.nondeterminism = 0.0;
  RandomNfaConfig hi = lo;
  hi.nondeterminism = 1.0;
  const Nfa sparse = random_nfa(lo_prng, lo);
  const Nfa branchy = random_nfa(hi_prng, hi);
  EXPECT_GE(branchy.num_edges(), sparse.num_edges());
  EXPECT_GE(branchy.max_out_degree(), sparse.max_out_degree());
}

TEST(RandomNfa, DensityScalesEdgeCount) {
  Prng a(6), b(6);
  RandomNfaConfig thin;
  thin.num_states = 120;
  thin.density = 1.1;
  RandomNfaConfig thick = thin;
  thick.density = 2.5;
  EXPECT_LT(random_nfa(a, thin).num_edges(), random_nfa(b, thick).num_edges());
}

TEST(RandomNfa, SingleStateDegenerate) {
  Prng prng(7);
  RandomNfaConfig config;
  config.num_states = 1;
  const Nfa nfa = random_nfa(prng, config);
  EXPECT_EQ(nfa.num_states(), 1);
  EXPECT_TRUE(nfa.is_final(0));
}

TEST(RandomNfa, LanguageNonEmpty) {
  // Final states are reachable by construction (backbone + finals include
  // the last backbone state). Verify via product reachability.
  Prng prng(8);
  for (int trial = 0; trial < 5; ++trial) {
    const Nfa nfa = random_nfa(prng);
    // BFS over the NFA graph to a final state.
    std::vector<bool> seen(static_cast<std::size_t>(nfa.num_states()), false);
    std::vector<State> stack{nfa.initial()};
    seen[static_cast<std::size_t>(nfa.initial())] = true;
    bool found = false;
    while (!stack.empty() && !found) {
      const State s = stack.back();
      stack.pop_back();
      if (nfa.is_final(s)) found = true;
      for (const auto& edge : nfa.edges(s))
        if (!seen[static_cast<std::size_t>(edge.target)]) {
          seen[static_cast<std::size_t>(edge.target)] = true;
          stack.push_back(edge.target);
        }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace rispar
