#include "automata/equivalence.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"

namespace rispar {
namespace {

Dfa dfa_of(const std::string& pattern) {
  return determinize(glushkov_nfa(parse_regex(pattern)));
}

TEST(DfaEquivalent, IdenticalLanguagesDifferentShapes) {
  // a+ and aa*|a denote the same language with different automata.
  EXPECT_TRUE(dfa_equivalent(dfa_of("a+"), dfa_of("aa*|a")));
  EXPECT_TRUE(dfa_equivalent(dfa_of("(ab)*"), dfa_of("(ab)*()")));
  EXPECT_TRUE(dfa_equivalent(dfa_of("a|b|ab"), dfa_of("ab|b|a")));
}

TEST(DfaEquivalent, DetectsDifferences) {
  EXPECT_FALSE(dfa_equivalent(dfa_of("a*"), dfa_of("a+")));
  EXPECT_FALSE(dfa_equivalent(dfa_of("(ab)*"), dfa_of("(ab)+")));
  EXPECT_FALSE(dfa_equivalent(dfa_of("ab"), dfa_of("ab|ba")));
}

TEST(DfaEquivalent, PartialVsCompletedAreEquivalent) {
  const Dfa partial = dfa_of("ab");
  const Dfa complete = partial.completed();
  EXPECT_GT(complete.num_states(), partial.num_states());
  EXPECT_TRUE(dfa_equivalent(partial, complete));
}

TEST(DfaEquivalent, EmptyVsNonEmpty) {
  Dfa empty = Dfa::with_identity_alphabet(1);
  empty.add_state(false);
  empty.set_initial(0);
  Dfa epsilon = Dfa::with_identity_alphabet(1);
  epsilon.add_state(true);
  epsilon.set_initial(0);
  EXPECT_FALSE(dfa_equivalent(empty, epsilon));
  EXPECT_TRUE(dfa_equivalent(empty, minimize_dfa(empty)));
}

TEST(DistinguishingWord, EmptyWitnessWhenInitialFinalityDiffers) {
  const auto witness = dfa_distinguishing_word(dfa_of("a*"), dfa_of("a+"));
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());  // ε separates a* from a+
}

TEST(DistinguishingWord, WitnessSeparates) {
  const Dfa a = dfa_of("(ab)*");
  const Dfa b = dfa_of("(ab)+");
  const auto witness = dfa_distinguishing_word(a, b);
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(a.accepts(*witness), b.accepts(*witness));
}

TEST(DistinguishingWord, NulloptWhenEquivalent) {
  EXPECT_FALSE(dfa_distinguishing_word(dfa_of("a+"), dfa_of("aa*|a")).has_value());
}

TEST(NfaEquivalent, MatchesDfaCheck) {
  const Nfa a = glushkov_nfa(parse_regex("(a|b)*abb"));
  const Nfa b = glushkov_nfa(parse_regex("(a|b)*abb()"));
  EXPECT_TRUE(nfa_equivalent(a, b));
  const Nfa c = glushkov_nfa(parse_regex("(a|b)*ab"));
  EXPECT_FALSE(nfa_equivalent(a, c));
}

class EquivalenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceProperty, MinimizedIsEquivalentAndMutationsAreNot) {
  Prng prng(GetParam());
  RandomNfaConfig config;
  config.num_states = 6 + static_cast<std::int32_t>(prng.pick_index(25));
  const Nfa nfa = random_nfa(prng, config);
  const Dfa dfa = determinize(nfa);
  const Dfa minimal = minimize_dfa(dfa);
  EXPECT_TRUE(dfa_equivalent(dfa, minimal));

  // Flip the finality of one reachable state of the minimal DFA: the result
  // must differ (in a minimal automaton every state is distinguishable).
  if (minimal.num_states() >= 2) {
    Dfa mutated = minimal;
    const State victim = static_cast<State>(
        prng.pick_index(static_cast<std::size_t>(minimal.num_states())));
    mutated.set_final(victim, !minimal.is_final(victim));
    EXPECT_FALSE(dfa_equivalent(minimal, mutated));
    const auto witness = dfa_distinguishing_word(minimal, mutated);
    ASSERT_TRUE(witness.has_value());
    EXPECT_NE(minimal.accepts(*witness), mutated.accepts(*witness));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace rispar
