#include "regex/simplify.hpp"

#include <gtest/gtest.h>

#include "automata/equivalence.hpp"
#include "automata/glushkov.hpp"
#include "automata/subset.hpp"
#include "regex/parser.hpp"
#include "regex/printer.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

std::string simplified(const std::string& pattern) {
  return regex_to_string(simplify_regex(parse_regex(pattern)));
}

TEST(Simplify, DuplicateBranchesRemoved) {
  EXPECT_EQ(simplified("ab|ab"), "ab");
  EXPECT_EQ(simplified("ab|cd|ab"), "ab|cd");
}

TEST(Simplify, LiteralBranchesFuse) {
  EXPECT_EQ(simplified("a|b|c"), "[a-c]");
}

TEST(Simplify, NestedRepetitionCollapse) {
  EXPECT_EQ(simplified("(a*)*"), "a*");
  EXPECT_EQ(simplified("(a+)*"), "a*");
  EXPECT_EQ(simplified("(a?)*"), "a*");
  EXPECT_EQ(simplified("(a?)+"), "a*");
  EXPECT_EQ(simplified("(a+)?"), "a*");
}

TEST(Simplify, OptionalOfNullableDropped) {
  EXPECT_EQ(simplified("(a*)?"), "a*");
  EXPECT_EQ(simplified("(a*b*)?"), "a*b*");
}

TEST(Simplify, EpsilonBranchBecomesOptional) {
  // a|() == a?
  EXPECT_EQ(simplified("a|()"), "a?");
}

TEST(Simplify, NullableUnboundedRepeatIsStar) {
  EXPECT_EQ(simplified("(a?){2,}"), "a*");
}

TEST(Simplify, Idempotent) {
  const RePtr once = simplify_regex(parse_regex("((a*)*|b|b)(c?)+"));
  const RePtr twice = simplify_regex(once);
  EXPECT_EQ(regex_to_string(once), regex_to_string(twice));
}

TEST(ExpandRepeats, ExactCount) {
  const RePtr expanded = re_expand_repeats(parse_regex("a{3}"));
  EXPECT_EQ(regex_to_string(expanded), "aaa");
}

TEST(ExpandRepeats, OpenBound) {
  const RePtr expanded = re_expand_repeats(parse_regex("a{2,}"));
  EXPECT_EQ(regex_to_string(expanded), "aaa*");
}

TEST(ExpandRepeats, RangeBoundNestsOptionals) {
  const RePtr expanded = re_expand_repeats(parse_regex("a{1,3}"));
  // a (a (a)?)?
  EXPECT_EQ(re_positions(expanded), 3u);
  EXPECT_FALSE(re_nullable(expanded));
}

TEST(ExpandRepeats, ZeroMaxIsEpsilon) {
  EXPECT_EQ(re_expand_repeats(parse_regex("a{0}"))->kind, ReKind::kEpsilon);
}

// Language preservation on random regexes, for both passes.
class SimplifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplifyProperty, SimplifyPreservesLanguage) {
  Prng prng(GetParam());
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 8 + static_cast<int>(prng.pick_index(20));
  const RePtr original = random_regex(prng, config);
  const RePtr simplified_re = simplify_regex(original);

  EXPECT_LE(re_size(simplified_re), re_size(original) + 1)
      << "simplification should not grow the AST: " << regex_to_string(original);
  EXPECT_TRUE(dfa_equivalent(determinize(glushkov_nfa(original)),
                             determinize(glushkov_nfa(simplified_re))))
      << regex_to_string(original) << "  vs  " << regex_to_string(simplified_re);
}

TEST_P(SimplifyProperty, ExpandRepeatsPreservesLanguage) {
  Prng prng(GetParam() ^ 0xabcdef);
  // Build r{m,n} over random small r.
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 4;
  const RePtr inner = random_regex(prng, config);
  const int min = static_cast<int>(prng.pick_index(3));
  const int max = prng.next_bool(0.3) ? -1 : min + static_cast<int>(prng.pick_index(3));
  const RePtr repeat = re_repeat(inner, min, max);
  const RePtr expanded = re_expand_repeats(repeat);
  EXPECT_TRUE(dfa_equivalent(determinize(glushkov_nfa(repeat)),
                             determinize(glushkov_nfa(expanded))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty, ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace rispar
