#include "automata/packed_table.hpp"

#include <gtest/gtest.h>

#include "automata/dfa.hpp"
#include "helpers.hpp"

namespace rispar {
namespace {

TEST(PackedTable, WidthSelection) {
  Dfa small = Dfa::with_identity_alphabet(2);
  for (int s = 0; s < 3; ++s) small.add_state();
  EXPECT_EQ(small.packed().width(), TableWidth::kU8);

  Dfa medium = Dfa::with_identity_alphabet(2);
  for (int s = 0; s < 0xFF; ++s) medium.add_state();
  EXPECT_EQ(medium.packed().width(), TableWidth::kU16);
}

TEST(PackedTable, SymbolMajorLayoutMatchesStep) {
  const Dfa dfa = testing::fig2_dfa();
  const PackedTable& packed = dfa.packed();
  ASSERT_EQ(packed.width(), TableWidth::kU8);
  for (State s = 0; s < dfa.num_states(); ++s) {
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      const State expected = dfa.step(s, a);
      const std::uint8_t entry = packed.column<std::uint8_t>(a)[s];
      if (expected == kDeadState)
        EXPECT_EQ(entry, PackedDead<std::uint8_t>::value);
      else
        EXPECT_EQ(static_cast<State>(entry), expected);
    }
  }
}

TEST(PackedTable, DeadEntriesUseSentinel) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  dfa.add_state();  // no transitions: every entry dead
  const PackedTable& packed = dfa.packed();
  for (Symbol a = 0; a < 2; ++a)
    EXPECT_EQ(packed.column<std::uint8_t>(a)[0], PackedDead<std::uint8_t>::value);
}

TEST(PackedTable, CacheInvalidatedByMutation) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  dfa.add_state();
  dfa.add_state();
  EXPECT_EQ(dfa.packed().column<std::uint8_t>(0)[0], PackedDead<std::uint8_t>::value);
  dfa.set_transition(0, 0, 1);
  EXPECT_EQ(static_cast<State>(dfa.packed().column<std::uint8_t>(0)[0]), 1);
  dfa.add_state();
  EXPECT_EQ(dfa.packed().num_states(), 3);
}

TEST(PackedTable, CopiedDfaKeepsWorkingTable) {
  Dfa dfa = testing::fig2_dfa();
  dfa.packed();
  const Dfa copy = dfa;  // shares the immutable packed cache
  EXPECT_EQ(copy.packed().num_states(), dfa.num_states());
  dfa.set_transition(0, 0, 0);  // invalidates only dfa's cache
  EXPECT_EQ(static_cast<State>(copy.packed().column<std::uint8_t>(0)[0]), 1);
  EXPECT_EQ(static_cast<State>(dfa.packed().column<std::uint8_t>(0)[0]), 0);
}

}  // namespace
}  // namespace rispar
