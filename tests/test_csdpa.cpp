#include "parallel/csdpa.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/random_nfa.hpp"
#include "automata/subset.hpp"
#include "core/interface_min.hpp"
#include "core/serial_match.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "regex/printer.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

struct Engines {
  Nfa nfa;
  Dfa min_dfa;
  Ridfa ridfa;

  explicit Engines(const Nfa& source)
      : nfa(source),
        min_dfa(minimize_dfa(determinize(source))),
        ridfa(build_minimized_ridfa(source)) {}
};

TEST(Csdpa, EmptyInputDecidedByInitialFinality) {
  ThreadPool pool(2);
  const Engines plus(glushkov_nfa(parse_regex("a+")));
  const Engines star(glushkov_nfa(parse_regex("a*")));
  const QueryOptions options{.chunks = 4, .convergence = false};
  const std::vector<Symbol> empty;
  EXPECT_FALSE(DfaDevice(plus.min_dfa).recognize(empty, pool, options).accepted);
  EXPECT_TRUE(DfaDevice(star.min_dfa).recognize(empty, pool, options).accepted);
  EXPECT_FALSE(NfaDevice(plus.nfa).recognize(empty, pool, options).accepted);
  EXPECT_TRUE(NfaDevice(star.nfa).recognize(empty, pool, options).accepted);
  EXPECT_FALSE(RidDevice(plus.ridfa).recognize(empty, pool, options).accepted);
  EXPECT_TRUE(RidDevice(star.ridfa).recognize(empty, pool, options).accepted);
}

TEST(Csdpa, ChunkCountClampsToInputLength) {
  ThreadPool pool(4);
  const Engines engines(glushkov_nfa(parse_regex("(ab)*")));
  const QueryOptions options{.chunks = 64, .convergence = false};
  const std::vector<Symbol> input{0, 1};  // "ab"
  const QueryResult stats =
      DfaDevice(engines.min_dfa).recognize(input, pool, options);
  EXPECT_TRUE(stats.accepted);
  EXPECT_EQ(stats.chunks, 2u);
}

TEST(Csdpa, StatsReportPhases) {
  ThreadPool pool(4);
  const Engines engines(glushkov_nfa(parse_regex("(ab)*")));
  std::vector<Symbol> input;
  for (int i = 0; i < 1000; ++i) {
    input.push_back(0);
    input.push_back(1);
  }
  const QueryOptions options{.chunks = 8, .convergence = false};
  const QueryResult stats =
      RidDevice(engines.ridfa).recognize(input, pool, options);
  EXPECT_TRUE(stats.accepted);
  EXPECT_GT(stats.transitions, 0u);
  EXPECT_GE(stats.reach_seconds, 0.0);
  EXPECT_GE(stats.join_seconds, 0.0);
  EXPECT_EQ(stats.total_seconds(), stats.reach_seconds + stats.join_seconds);
}

TEST(Csdpa, SerialChunkingMatchesSerialTransitionCount) {
  ThreadPool pool(2);
  const Engines engines(glushkov_nfa(parse_regex("(ab)*")));
  std::vector<Symbol> input;
  for (int i = 0; i < 50; ++i) {
    input.push_back(0);
    input.push_back(1);
  }
  const QueryOptions serial{.chunks = 1, .convergence = false};
  const QueryResult stats =
      DfaDevice(engines.min_dfa).recognize(input, pool, serial);
  EXPECT_EQ(stats.transitions, input.size());
}

TEST(Csdpa, RidNeverDoesMoreTransitionsThanDfaOnWinningFamily) {
  // [ab]*a[ab]{5}: minimal DFA 64 states, RI-DFA interface 8 — the RID must
  // execute far fewer speculative transitions with many chunks.
  ThreadPool pool(4);
  const Engines engines(glushkov_nfa(parse_regex("[ab]*a[ab]{5}")));
  Prng prng(55);
  std::vector<Symbol> input = testing::random_word(prng, 2, 4000);
  input[input.size() - 6] = 0;  // ensure membership
  const QueryOptions options{.chunks = 16, .convergence = false};
  const QueryResult dfa_stats =
      DfaDevice(engines.min_dfa).recognize(input, pool, options);
  const QueryResult rid_stats =
      RidDevice(engines.ridfa).recognize(input, pool, options);
  EXPECT_TRUE(dfa_stats.accepted);
  EXPECT_TRUE(rid_stats.accepted);
  EXPECT_LT(rid_stats.transitions * 3, dfa_stats.transitions);
}

class DeviceAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeviceAgreement, AllVariantsMatchSerialOracleOnRandomRegexes) {
  Prng prng(GetParam());
  ThreadPool pool(4);
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 8 + static_cast<int>(prng.pick_index(15));
  const RePtr re = random_regex(prng, config);
  const Nfa nfa = glushkov_nfa(re);
  const Engines engines(nfa);

  for (const std::size_t chunks : {1u, 2u, 3u, 7u}) {
    const QueryOptions options{.chunks = chunks, .convergence = false};
    for (int trial = 0; trial < 8; ++trial) {
      // Mix positive samples and random noise.
      std::vector<Symbol> input;
      std::string member;
      if (trial % 2 == 0 && random_member(re, prng, member)) {
        input = nfa.symbols().translate(member);
      } else {
        input = testing::random_word(prng, nfa.num_symbols(),
                                     1 + prng.pick_index(40));
      }
      const bool oracle = serial_match(engines.min_dfa, input).accepted;
      EXPECT_EQ(DfaDevice(engines.min_dfa).recognize(input, pool, options).accepted,
                oracle)
          << regex_to_string(re) << " chunks=" << chunks;
      EXPECT_EQ(NfaDevice(engines.nfa).recognize(input, pool, options).accepted, oracle)
          << regex_to_string(re) << " chunks=" << chunks;
      EXPECT_EQ(RidDevice(engines.ridfa).recognize(input, pool, options).accepted,
                oracle)
          << regex_to_string(re) << " chunks=" << chunks;
    }
  }
}

TEST_P(DeviceAgreement, AllVariantsMatchOnRandomNfas) {
  Prng prng(GetParam() ^ 0xfeed);
  ThreadPool pool(4);
  RandomNfaConfig config;
  config.num_states = 6 + static_cast<std::int32_t>(prng.pick_index(25));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(3));
  const Nfa nfa = random_nfa(prng, config);
  const Engines engines(nfa);

  for (const std::size_t chunks : {2u, 5u}) {
    const QueryOptions plain{.chunks = chunks, .convergence = false};
    const QueryOptions converging{.chunks = chunks, .convergence = true};
    for (int trial = 0; trial < 10; ++trial) {
      const auto input = testing::random_word(prng, nfa.num_symbols(),
                                              1 + prng.pick_index(60));
      const bool oracle = serial_match(engines.min_dfa, input).accepted;
      EXPECT_EQ(DfaDevice(engines.min_dfa).recognize(input, pool, plain).accepted,
                oracle);
      EXPECT_EQ(DfaDevice(engines.min_dfa).recognize(input, pool, converging).accepted,
                oracle);
      EXPECT_EQ(NfaDevice(engines.nfa).recognize(input, pool, plain).accepted, oracle);
      EXPECT_EQ(RidDevice(engines.ridfa).recognize(input, pool, plain).accepted,
                oracle);
      EXPECT_EQ(RidDevice(engines.ridfa).recognize(input, pool, converging).accepted,
                oracle);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceAgreement, ::testing::Range<std::uint64_t>(0, 20));

class LookbackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LookbackProperty, DfaWithLookbackMatchesOracle) {
  // Look-back speculation (QueryOptions::lookback) must never change the
  // decision, only the amount of speculative work.
  Prng prng(GetParam() ^ 0x100cba);
  ThreadPool pool(4);
  RandomNfaConfig config;
  config.num_states = 6 + static_cast<std::int32_t>(prng.pick_index(20));
  const Nfa nfa = random_nfa(prng, config);
  const Engines engines(nfa);
  for (const std::size_t lookback : {1u, 4u, 16u, 1000u}) {
    for (int trial = 0; trial < 8; ++trial) {
      const auto input = testing::random_word(prng, nfa.num_symbols(),
                                              1 + prng.pick_index(80));
      const bool oracle = serial_match(engines.min_dfa, input).accepted;
      QueryOptions options{.chunks = 5, .convergence = false};
      options.lookback = lookback;
      EXPECT_EQ(DfaDevice(engines.min_dfa).recognize(input, pool, options).accepted,
                oracle)
          << "lookback=" << lookback;
    }
  }
}

TEST(Lookback, PrunesStartsWhereTheWindowPinsTheBoundary) {
  // Look-back pays off when speculative runs survive (so they are costly)
  // but a short window determines the boundary state — the [ab]*a[ab]{k}
  // family: the state after any k+1 symbols is a function of exactly those
  // symbols, so a (k+2)-symbol probe collapses 2^(k+1) starts to one.
  const Nfa nfa = glushkov_nfa(parse_regex("[ab]*a[ab]{5}"));
  const Engines engines(nfa);
  ThreadPool pool(4);
  Prng prng(77);
  std::vector<Symbol> input = testing::random_word(prng, 2, 4000);
  input[input.size() - 6] = 0;  // membership
  QueryOptions plain{.chunks = 8, .convergence = false};
  QueryOptions pruned{.chunks = 8, .convergence = false};
  pruned.lookback = 8;
  const auto base = DfaDevice(engines.min_dfa).recognize(input, pool, plain);
  const auto cut = DfaDevice(engines.min_dfa).recognize(input, pool, pruned);
  EXPECT_TRUE(base.accepted);
  EXPECT_TRUE(cut.accepted);
  // 64 surviving runs per chunk vs ~1 plus the probe: at least 10x saved.
  EXPECT_LT(cut.transitions * 10, base.transitions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookbackProperty, ::testing::Range<std::uint64_t>(0, 12));

TEST(TreeJoin, MatchesSerialJoinDecision) {
  Prng prng(2718);
  ThreadPool pool(4);
  for (int trial = 0; trial < 12; ++trial) {
    RandomNfaConfig config;
    config.num_states = 5 + static_cast<std::int32_t>(prng.pick_index(20));
    const Nfa nfa = random_nfa(prng, config);
    const Engines engines(nfa);
    for (const std::size_t chunks : {1u, 2u, 7u, 16u}) {
      const auto input = testing::random_word(prng, nfa.num_symbols(),
                                              1 + prng.pick_index(60));
      QueryOptions serial_join{.chunks = chunks, .convergence = false};
      QueryOptions tree{.chunks = chunks, .convergence = false};
      tree.tree_join = true;
      const auto a = DfaDevice(engines.min_dfa).recognize(input, pool, serial_join);
      const auto b = DfaDevice(engines.min_dfa).recognize(input, pool, tree);
      EXPECT_EQ(a.accepted, b.accepted) << "chunks=" << chunks;
      EXPECT_EQ(a.transitions, b.transitions);
    }
  }
}

TEST(TreeJoin, HandlesOddChunkCounts) {
  ThreadPool pool(4);
  const Engines engines(glushkov_nfa(parse_regex("(ab)*")));
  std::vector<Symbol> input;
  for (int i = 0; i < 30; ++i) {
    input.push_back(0);
    input.push_back(1);
  }
  for (const std::size_t chunks : {3u, 5u, 9u, 13u}) {
    QueryOptions tree{.chunks = chunks, .convergence = false};
    tree.tree_join = true;
    EXPECT_TRUE(DfaDevice(engines.min_dfa).recognize(input, pool, tree).accepted)
        << "chunks=" << chunks;
  }
}



}  // namespace
}  // namespace rispar
