// rispard server tests: wire protocol framing, session lifecycle against the
// Engine::find_all oracle, the typed error taxonomy over the socket path,
// hot reload (including a concurrent feed/reload hammer — these suites are
// named Rispard* so the TSan CI leg picks them up) and admission-controlled
// overload surfacing as RESOURCE_EXHAUSTED frames instead of dropped
// connections.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/compile_cache.hpp"
#include "engine/engine.hpp"
#include "server/catalog.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace rispar::rispard {
namespace {

// ------------------------------------------------------------ protocol unit

TEST(RispardProtocol, FramesRoundTripThroughSplitDeliveries) {
  std::string stream;
  stream += make_open_session(7, 3, 1234567, 4);
  stream += make_feed(7, "hello feed bytes");
  stream += make_close(7);
  stream += make_stats();
  stream += make_reload("ab\nba\n");

  // Deliver one byte at a time: reassembly must be delivery-agnostic.
  FrameReader reader;
  std::vector<FrameType> types;
  Frame frame;
  for (char byte : stream) {
    reader.append(&byte, 1);
    while (reader.next(frame)) {
      types.push_back(frame.type);
      if (frame.type == FrameType::kOpenSession) {
        PayloadReader payload(frame.payload);
        EXPECT_EQ(payload.get_u32(), 7u);
        EXPECT_EQ(payload.get_u32(), 3u);
        EXPECT_EQ(payload.get_u64(), 1234567u);
        EXPECT_EQ(payload.get_u32(), 4u);
        EXPECT_TRUE(payload.exhausted());
      } else if (frame.type == FrameType::kFeed) {
        PayloadReader payload(frame.payload);
        EXPECT_EQ(payload.get_u32(), 7u);
        EXPECT_EQ(payload.rest(), "hello feed bytes");
      } else if (frame.type == FrameType::kReload) {
        EXPECT_EQ(frame.payload, "ab\nba\n");
      }
    }
  }
  EXPECT_EQ(types,
            (std::vector<FrameType>{FrameType::kOpenSession, FrameType::kFeed,
                                    FrameType::kClose, FrameType::kStats,
                                    FrameType::kReload}));
  EXPECT_EQ(reader.pending(), 0u);
}

TEST(RispardProtocol, TruncatedFrameStaysPending) {
  const std::string whole = make_feed(1, "0123456789");
  FrameReader reader;
  reader.append(whole.data(), whole.size() - 3);
  Frame frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_FALSE(reader.overflowed());
  EXPECT_GT(reader.pending(), 0u);
  reader.append(whole.data() + whole.size() - 3, 3);
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kFeed);
}

TEST(RispardProtocol, OversizedLengthPrefixIsAHardError) {
  std::string header;
  put_u32(header, kMaxFramePayload + 1);
  put_u8(header, static_cast<std::uint8_t>(FrameType::kFeed));
  FrameReader reader;
  reader.append(header.data(), header.size());
  Frame frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.overflowed());
}

TEST(RispardProtocol, PayloadReaderFlagsUnderrunAndTrailingGarbage) {
  std::string payload;
  put_u32(payload, 9);
  PayloadReader underrun(payload);
  underrun.get_u32();
  underrun.get_u64();  // 4 bytes short
  EXPECT_FALSE(underrun.ok);
  EXPECT_FALSE(underrun.exhausted());

  PayloadReader trailing(payload);
  // Nothing read: the whole payload is trailing garbage.
  EXPECT_FALSE(trailing.exhausted());
  EXPECT_EQ(trailing.get_u32(), 9u);
  EXPECT_TRUE(trailing.exhausted());
}

// --------------------------------------------------------------- harnesses

/// An in-process server on an ephemeral port, running until destruction.
struct ServerHarness {
  std::unique_ptr<Server> server;
  std::thread thread;

  explicit ServerHarness(std::vector<std::string> regexes, ServerConfig config = {})
      : server(std::make_unique<Server>(std::move(regexes), std::move(config))) {
    thread = std::thread([this] { server->run(); });
  }
  ~ServerHarness() {
    server->stop();
    thread.join();
  }
  std::uint16_t port() const { return server->port(); }
};

/// A blocking client connection speaking the protocol helpers.
struct Client {
  int fd = -1;
  FrameReader reader;

  explicit Client(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      fd = -1;
    } else {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
  }
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool send(std::string_view bytes) { return send_all(fd, bytes); }
  bool recv(Frame& frame) { return recv_frame(fd, reader, frame); }

  /// OPEN_SESSION and parse the OPENED ack; returns the serving generation
  /// (0 on failure, generations start at 1).
  std::uint64_t open(std::uint32_t sid, std::uint32_t pid,
                     std::uint64_t deadline_ns = 0, std::uint32_t chunks = 2) {
    if (!send(make_open_session(sid, pid, deadline_ns, chunks))) return 0;
    Frame frame;
    if (!recv(frame) || frame.type != FrameType::kOpened) return 0;
    PayloadReader payload(frame.payload);
    EXPECT_EQ(payload.get_u32(), sid);
    EXPECT_EQ(payload.get_u32(), pid);
    return payload.get_u64();
  }

  struct FeedOutcome {
    bool ok = false;
    ErrorCode error{};            // valid when !ok
    std::vector<Match> matches;   // absolute offsets
    std::uint64_t consumed_total = 0;
    std::uint64_t matches_total = 0;
  };

  /// FEED and collect MATCHES* until the FED ack (or one ERROR frame).
  FeedOutcome feed(std::uint32_t sid, std::string_view bytes) {
    FeedOutcome outcome;
    if (!send(make_feed(sid, bytes))) return outcome;
    Frame frame;
    for (;;) {
      if (!recv(frame)) return outcome;
      if (frame.type == FrameType::kMatches) {
        PayloadReader payload(frame.payload);
        EXPECT_EQ(payload.get_u32(), sid);
        const std::uint32_t count = payload.get_u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          Match m;
          m.pattern_id = payload.get_u32();
          m.begin = payload.get_u64();
          m.end = payload.get_u64();
          outcome.matches.push_back(m);
        }
        EXPECT_TRUE(payload.exhausted());
        continue;
      }
      if (frame.type == FrameType::kFed) {
        PayloadReader payload(frame.payload);
        EXPECT_EQ(payload.get_u32(), sid);
        outcome.consumed_total = payload.get_u64();
        outcome.matches_total = payload.get_u64();
        outcome.ok = true;
        return outcome;
      }
      if (frame.type == FrameType::kError) {
        PayloadReader payload(frame.payload);
        EXPECT_EQ(payload.get_u32(), sid);
        outcome.error = static_cast<ErrorCode>(payload.get_u8());
        return outcome;
      }
      ADD_FAILURE() << "unexpected frame type 0x" << std::hex
                    << static_cast<unsigned>(frame.type);
      return outcome;
    }
  }

  /// CLOSE and parse the CLOSED ack; returns matches_total (or nullopt-ish
  /// UINT64_MAX on failure).
  std::uint64_t close_session(std::uint32_t sid) {
    if (!send(make_close(sid))) return UINT64_MAX;
    Frame frame;
    if (!recv(frame) || frame.type != FrameType::kClosed) return UINT64_MAX;
    PayloadReader payload(frame.payload);
    EXPECT_EQ(payload.get_u32(), sid);
    return payload.get_u64();
  }

  /// The ERROR frame expected next on the wire (failing the test otherwise).
  ErrorCode expect_error(std::uint32_t sid) {
    Frame frame;
    if (!recv(frame) || frame.type != FrameType::kError) {
      ADD_FAILURE() << "expected an ERROR frame";
      return ErrorCode::kInternal;
    }
    PayloadReader payload(frame.payload);
    EXPECT_EQ(payload.get_u32(), sid);
    return static_cast<ErrorCode>(payload.get_u8());
  }
};

// ---------------------------------------------------------------- sessions

TEST(RispardServer, StreamedMatchesAgreeWithFindAllAcrossWindows) {
  ServerHarness harness({"ab", "(a|b)*c"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);

  std::string text;
  for (int i = 0; i < 300; ++i) text += (i % 7 == 0) ? "xaby" : "aabbc";
  const Engine oracle(Pattern::compile("ab"));
  const std::vector<Match> expected = oracle.find_all(text);
  ASSERT_FALSE(expected.empty());

  ASSERT_EQ(client.open(/*sid=*/42, /*pid=*/0), 1u);
  // Window size 13 forces matches to straddle window boundaries; offsets in
  // MATCHES frames must still be absolute stream offsets.
  std::vector<Match> streamed;
  for (std::size_t offset = 0; offset < text.size(); offset += 13) {
    const auto outcome =
        client.feed(42, std::string_view(text).substr(offset, 13));
    ASSERT_TRUE(outcome.ok);
    streamed.insert(streamed.end(), outcome.matches.begin(),
                    outcome.matches.end());
  }
  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(streamed[i].begin, expected[i].begin) << "match " << i;
    EXPECT_EQ(streamed[i].end, expected[i].end) << "match " << i;
    EXPECT_EQ(streamed[i].pattern_id, 0u);
  }
  EXPECT_EQ(client.close_session(42), expected.size());
}

TEST(RispardServer, OneConnectionMultiplexesSessionsOnDifferentPatterns) {
  ServerHarness harness({"ab", "ba"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);

  ASSERT_EQ(client.open(1, 0), 1u);
  ASSERT_EQ(client.open(2, 1), 1u);
  const std::string text = "abbaabba";
  const auto on_ab = client.feed(1, text);
  const auto on_ba = client.feed(2, text);
  ASSERT_TRUE(on_ab.ok);
  ASSERT_TRUE(on_ba.ok);
  const Engine ab(Pattern::compile("ab"));
  const Engine ba(Pattern::compile("ba"));
  EXPECT_EQ(on_ab.matches_total, ab.find_all(text).size());
  EXPECT_EQ(on_ba.matches_total, ba.find_all(text).size());
  EXPECT_EQ(client.close_session(1), on_ab.matches_total);
  EXPECT_EQ(client.close_session(2), on_ba.matches_total);
}

TEST(RispardServer, CountersTrackServing) {
  ServerHarness harness({"ab"});
  {
    Client client(harness.port());
    ASSERT_GE(client.fd, 0);
    ASSERT_EQ(client.open(1, 0), 1u);
    ASSERT_TRUE(client.feed(1, "xxabxx").ok);
    client.close_session(1);
  }
  const ServerCounters counters = harness.server->counters();
  EXPECT_EQ(counters.connections_accepted, 1u);
  EXPECT_EQ(counters.sessions_opened, 1u);
  EXPECT_EQ(counters.sessions_open, 0u);
  EXPECT_EQ(counters.feeds, 1u);
  EXPECT_EQ(counters.bytes_fed, 6u);
  EXPECT_EQ(counters.matches_emitted, 1u);
}

// ------------------------------------------------------------ typed errors

TEST(RispardErrors, UnknownPatternUnknownSessionDuplicateSession) {
  ServerHarness harness({"ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);

  // Pattern id past the catalog.
  ASSERT_TRUE(client.send(make_open_session(1, 99, 0, 1)));
  EXPECT_EQ(client.expect_error(1), ErrorCode::kUnknownPattern);

  // FEED/CLOSE for a session never opened.
  ASSERT_TRUE(client.send(make_feed(5, "abc")));
  EXPECT_EQ(client.expect_error(5), ErrorCode::kUnknownSession);
  ASSERT_TRUE(client.send(make_close(5)));
  EXPECT_EQ(client.expect_error(5), ErrorCode::kUnknownSession);

  // Reusing a live session id.
  ASSERT_EQ(client.open(1, 0), 1u);
  ASSERT_TRUE(client.send(make_open_session(1, 0, 0, 1)));
  EXPECT_EQ(client.expect_error(1), ErrorCode::kSessionExists);

  // The connection survived all of it.
  EXPECT_TRUE(client.feed(1, "xxabxx").ok);
  EXPECT_EQ(client.close_session(1), 1u);
}

TEST(RispardErrors, ReservedSessionIdIsRejected) {
  ServerHarness harness({"ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);
  ASSERT_TRUE(client.send(make_open_session(kNoSession, 0, 0, 1)));
  EXPECT_EQ(client.expect_error(kNoSession), ErrorCode::kValidation);
}

TEST(RispardErrors, SessionCapYieldsTooManySessions) {
  ServerConfig config;
  config.max_sessions_per_connection = 2;
  ServerHarness harness({"ab"}, config);
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);
  ASSERT_EQ(client.open(1, 0), 1u);
  ASSERT_EQ(client.open(2, 0), 1u);
  ASSERT_TRUE(client.send(make_open_session(3, 0, 0, 1)));
  EXPECT_EQ(client.expect_error(3), ErrorCode::kTooManySessions);
  // Closing one frees a slot.
  client.close_session(1);
  EXPECT_EQ(client.open(3, 0), 1u);
}

TEST(RispardErrors, MalformedFrameDrawsProtocolErrorThenClose) {
  ServerHarness harness({"ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);
  std::string bogus;
  put_frame(bogus, static_cast<FrameType>(0x6f), "junk");
  ASSERT_TRUE(client.send(bogus));
  Frame frame;
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, FrameType::kError);
  PayloadReader payload(frame.payload);
  EXPECT_EQ(payload.get_u32(), kNoSession);
  EXPECT_EQ(static_cast<ErrorCode>(payload.get_u8()), ErrorCode::kProtocol);
  // After a protocol error the server closes: next read is EOF.
  EXPECT_FALSE(client.recv(frame));
  EXPECT_GE(harness.server->counters().protocol_errors, 1u);
}

TEST(RispardErrors, DeadlineExceededPoisonsThenReopenRecovers) {
  ServerHarness harness({"(ab|ba|aa|bb)*ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);

  // A 1ns budget has always already expired by the first governor
  // checkpoint; big window + chunking so the feed crosses checkpoints.
  ASSERT_EQ(client.open(1, 0, /*deadline_ns=*/1, /*chunks=*/4), 1u);
  std::string window;
  for (int i = 0; i < 40000; ++i) window += "ab";
  const auto doomed = client.feed(1, window);
  ASSERT_FALSE(doomed.ok);
  EXPECT_EQ(doomed.error, ErrorCode::kDeadlineExceeded);

  // The failed feed poisoned the StreamSession (library contract): further
  // feeds surface ValidationError as typed frames, still no disconnect.
  const auto poisoned = client.feed(1, "ab");
  ASSERT_FALSE(poisoned.ok);
  EXPECT_EQ(poisoned.error, ErrorCode::kValidation);

  // CLOSE + reopen on the same id is the documented recovery path.
  client.close_session(1);
  ASSERT_EQ(client.open(1, 0, /*deadline_ns=*/0, /*chunks=*/2), 1u);
  const auto healthy = client.feed(1, "xxabxx");
  ASSERT_TRUE(healthy.ok);
  EXPECT_EQ(healthy.matches_total, 1u);
  EXPECT_GE(harness.server->counters().error_frames, 2u);
}

// ------------------------------------------------------------------- stats

TEST(RispardStats, StatsJsonCarriesServerAndPoolCounters) {
  ServerHarness harness({"ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);
  ASSERT_EQ(client.open(1, 0), 1u);
  ASSERT_TRUE(client.feed(1, "abab").ok);

  ASSERT_TRUE(client.send(make_stats()));
  Frame frame;
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, FrameType::kStatsJson);
  const std::string json(frame.payload);
  for (const char* key :
       {"\"generation\":1", "\"patterns\":1", "\"sessions_open\":1",
        "\"feeds\":1", "\"bytes_fed\":4", "\"pool\"", "\"executed\"",
        "\"rejected\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
  }
}

// ------------------------------------------------------------------ reload

TEST(RispardReload, SwapsGenerationsWithoutDisturbingOpenSessions) {
  ServerHarness harness({"ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);

  // Session opened on generation 1 = /ab/.
  ASSERT_EQ(client.open(1, 0), 1u);
  ASSERT_EQ(client.feed(1, "abba").matches_total, 1u);

  // Swap to /ba/ (generation 2).
  ASSERT_TRUE(client.send(make_reload("# swap\nba\n")));
  Frame frame;
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, FrameType::kReloaded);
  PayloadReader payload(frame.payload);
  EXPECT_EQ(payload.get_u64(), 2u);
  EXPECT_EQ(payload.get_u32(), 1u);
  EXPECT_EQ(harness.server->generation(), 2u);

  // The in-flight session still serves the set it opened with: "xaby" holds
  // one /ab/ and zero /ba/, so a total of 2 proves the old engine answered.
  ASSERT_EQ(client.feed(1, "xaby").matches_total, 2u);

  // New sessions serve generation 2.
  ASSERT_EQ(client.open(2, 0), 2u);
  ASSERT_EQ(client.feed(2, "xbay").matches_total, 1u);
  ASSERT_EQ(client.feed(2, "xaby").matches_total, 1u);  // /ba/ ignores "ab"
  client.close_session(1);
  client.close_session(2);
  EXPECT_EQ(harness.server->counters().reloads, 1u);
}

TEST(RispardReload, BadManifestKeepsTheOldSetServing) {
  ServerHarness harness({"ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);
  ASSERT_EQ(client.open(1, 0), 1u);

  ASSERT_TRUE(client.send(make_reload("(unclosed\n")));
  EXPECT_EQ(client.expect_error(kNoSession), ErrorCode::kBadManifest);
  ASSERT_TRUE(client.send(make_reload("")));  // no manifest file configured
  EXPECT_EQ(client.expect_error(kNoSession), ErrorCode::kBadManifest);
  EXPECT_EQ(harness.server->generation(), 1u);

  EXPECT_EQ(client.feed(1, "xxabxx").matches_total, 1u);
  EXPECT_EQ(harness.server->counters().reloads, 0u);
}

TEST(RispardReload, RetiredGenerationIsFreedWhenItsLastSessionCloses) {
  ServerHarness harness({"ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);

  const std::weak_ptr<const PatternCatalog> gen1 = harness.server->catalog_handle();
  ASSERT_EQ(client.open(1, 0), 1u);  // pins generation 1

  ASSERT_TRUE(client.send(make_reload("ba\n")));
  Frame frame;
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, FrameType::kReloaded);

  // Retired but pinned: the session holds generation 1 alive.
  EXPECT_NE(gen1.lock(), nullptr);
  ASSERT_TRUE(client.feed(1, "ab").ok);

  // Last pin drops at close; destruction happens on the server side of the
  // CLOSED ack, so allow a short grace period.
  client.close_session(1);
  for (int i = 0; i < 200 && !gen1.expired(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(gen1.expired());
}

// ISSUE 8 satellite: an UNCHANGED manifest reload is served from the compile
// cache — every line is a hit (shared_ptr bump), no recompilation — and the
// cache counters are observable over the socket via STATS_JSON.
TEST(RispardReload, UnchangedManifestReloadServesFromTheCompileCache) {
  ServerHarness harness({"ab", "a[0-9]+b"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);

  const auto cache_stats = [&] { return harness.server->compile_cache()->stats(); };
  // Seeding compiled both lines through the cache: two misses, no hits.
  EXPECT_EQ(cache_stats().misses, 2u);
  EXPECT_EQ(cache_stats().hits, 0u);

  // Reload the exact same manifest: generation bumps, both lines hit.
  ASSERT_TRUE(client.send(make_reload("ab\na[0-9]+b\n")));
  Frame frame;
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, FrameType::kReloaded);
  EXPECT_EQ(cache_stats().misses, 2u);
  EXPECT_EQ(cache_stats().hits, 2u);

  // And the new generation serves correctly.
  ASSERT_EQ(client.open(1, 1), 2u);
  EXPECT_EQ(client.feed(1, "xa42by").matches_total, 1u);

  // The counters surface over the wire too (the fleet's observability path).
  ASSERT_TRUE(client.send(make_stats()));
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, FrameType::kStatsJson);
  const std::string json(frame.payload);
  EXPECT_NE(json.find("\"compile_cache\":{\"hits\":2,\"misses\":2"),
            std::string::npos)
      << json;
}

// ISSUE 8 satellite: a manifest line may name a .rpb bundle; its patterns
// expand in place (zero-copy mapped) and repeated reloads of the unchanged
// file are cache hits keyed on the bundle's (mtime, size) identity.
TEST(RispardReload, BundleManifestEntryServesMappedPatterns) {
  const std::string bundle_path = ::testing::TempDir() + "rispard_manifest_" +
                                  std::to_string(::getpid()) + ".rpb";
  {
    const std::vector<Pattern> patterns = {Pattern::compile("cd+"),
                                           Pattern::compile("[xy]z")};
    Pattern::save_bundle_many(bundle_path, patterns);
  }

  ServerHarness harness({"ab"});
  Client client(harness.port());
  ASSERT_GE(client.fd, 0);

  const std::string manifest = "ab\n" + bundle_path + "\n";
  Frame frame;
  ASSERT_TRUE(client.send(make_reload(manifest)));
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, FrameType::kReloaded);
  {
    PayloadReader payload(frame.payload);
    EXPECT_EQ(payload.get_u64(), 2u);  // generation
    EXPECT_EQ(payload.get_u32(), 3u);  // ab + two bundle patterns
  }

  // Pattern ids keep line-then-bundle order: 0 = /ab/, 1 = /cd+/, 2 = /[xy]z/.
  ASSERT_EQ(client.open(1, 1), 2u);
  EXPECT_EQ(client.feed(1, "acda").matches_total, 1u);
  ASSERT_EQ(client.open(2, 2), 2u);
  EXPECT_EQ(client.feed(2, "wxz yz").matches_total, 2u);

  // Unchanged file ⇒ reload hits the cache for both bundle patterns.
  const auto before = harness.server->compile_cache()->stats();
  ASSERT_TRUE(client.send(make_reload(manifest)));
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, FrameType::kReloaded);
  const auto after = harness.server->compile_cache()->stats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.hits, before.hits + 3);

  std::error_code ec;
  std::filesystem::remove(bundle_path, ec);
}

// The concurrent hammer the issue asks for: feeds racing RELOAD swaps. Runs
// under the TSan CI leg (suite name matches Rispard*). In-flight sessions
// must keep serving the generation they opened with; every swap is atomic
// (no torn catalogs); nothing disconnects.
TEST(RispardReloadHammer, FeedsRaceReloadsWithoutTearing) {
  ServerHarness harness({"ab"});
  const std::uint16_t port = harness.port();

  // Generation g serves /ab/ when odd, /ba/ when even (the reloader
  // alternates manifests), so a session's expected totals follow from the
  // generation its OPENED ack reported.
  std::string text;
  for (int i = 0; i < 64; ++i) text += "abbaab";
  const std::size_t expect_ab = Engine(Pattern::compile("ab")).find_all(text).size();
  const std::size_t expect_ba = Engine(Pattern::compile("ba")).find_all(text).size();

  constexpr int kClients = 4;
  constexpr int kIterations = 25;
  constexpr int kReloads = 40;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(port);
      if (client.fd < 0) {
        ++failures;
        return;
      }
      for (int i = 0; i < kIterations; ++i) {
        const std::uint32_t sid = static_cast<std::uint32_t>(c * 1000 + i);
        const std::uint64_t generation = client.open(sid, 0);
        if (generation == 0) {
          ++failures;
          return;
        }
        // Feed in three windows so the session outlives several swaps.
        bool fed = true;
        for (std::size_t offset = 0; offset < text.size(); offset += 128)
          fed = fed &&
                client.feed(sid, std::string_view(text).substr(offset, 128)).ok;
        const std::uint64_t total = client.close_session(sid);
        if (!fed || total == UINT64_MAX) {
          ++failures;
          return;
        }
        const std::size_t expected =
            (generation % 2 == 1) ? expect_ab : expect_ba;
        if (total != expected) ++mismatches;
      }
    });
  }

  std::thread reloader([&] {
    Client client(port);
    if (client.fd < 0) {
      ++failures;
      return;
    }
    for (int r = 0; r < kReloads; ++r) {
      // gen r+2: even serves /ba/, odd serves /ab/ — matches the formula.
      const char* manifest = (r % 2 == 0) ? "ba\n" : "ab\n";
      if (!client.send(make_reload(manifest))) {
        ++failures;
        return;
      }
      Frame frame;
      if (!client.recv(frame) || frame.type != FrameType::kReloaded) {
        ++failures;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (std::thread& thread : clients) thread.join();
  reloader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(harness.server->counters().reloads, kReloads);
  EXPECT_EQ(harness.server->generation(), 1u + kReloads);
}

// ---------------------------------------------------------------- overload

// Saturating PoolAdmission{kReject} through the socket path: overload must
// surface as RESOURCE_EXHAUSTED frames and PoolStats::rejected advancing —
// never as dropped connections — and the server must stay serviceable.
TEST(RispardOverload, AdmissionRejectSurfacesAsTypedFramesNotResets) {
  ServerConfig config;
  config.pool_threads = 2;
  config.feed_workers = 4;
  config.admission.max_injected = 1;
  config.admission.policy = OverloadPolicy::kReject;
  ServerHarness harness({"(a|b)*abb"}, config);
  const std::uint16_t port = harness.port();

  std::string window;
  for (int i = 0; i < 60000; ++i) window += "abab";

  constexpr int kClients = 4;
  std::atomic<int> rejects{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(port);
      if (client.fd < 0) {
        ++failures;
        return;
      }
      std::uint32_t sid = static_cast<std::uint32_t>(c + 1);
      if (client.open(sid, 0, 0, /*chunks=*/8) == 0) {
        ++failures;
        return;
      }
      // Feed until someone gets rejected (bounded), reopening after each
      // reject — RESOURCE_EXHAUSTED poisons the session by design, and
      // close + reopen is the documented client recovery.
      for (int round = 0; round < 60 && rejects.load() == 0; ++round) {
        const auto outcome = client.feed(sid, window);
        if (outcome.ok) continue;
        if (outcome.error != ErrorCode::kResourceExhausted) {
          ++failures;
          return;
        }
        ++rejects;
        if (client.close_session(sid) == UINT64_MAX) {
          ++failures;
          return;
        }
        sid += 100;
        if (client.open(sid, 0, 0, /*chunks=*/8) == 0) {
          ++failures;
          return;
        }
      }
      client.close_session(sid);
    });
  }
  for (std::thread& thread : clients) thread.join();

  EXPECT_EQ(failures.load(), 0);
  ASSERT_GT(rejects.load(), 0) << "admission never tripped — overload path untested";
  EXPECT_GE(harness.server->pool_stats().rejected, 1u);
  EXPECT_GE(harness.server->counters().feed_rejects, 1u);

  // Still serviceable: a fresh connection gets correct answers.
  Client fresh(port);
  ASSERT_GE(fresh.fd, 0);
  ASSERT_EQ(fresh.open(1, 0, 0, 1), 1u);
  const auto outcome = fresh.feed(1, "xxabbxx");
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.matches_total, 1u);
  EXPECT_EQ(fresh.close_session(1), 1u);
}

}  // namespace
}  // namespace rispar::rispard
