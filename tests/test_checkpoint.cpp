// Session checkpoint/resume (engine/checkpoint.hpp): round trips across
// engines and begin modes, the reject taxonomy, and blob integrity. The
// randomized segmentation × kill-point sweep lives in tests/test_fuzz.cpp
// (CheckpointFuzz); these are the deterministic unit cases.
#include "engine/checkpoint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/pattern_set.hpp"
#include "util/prng.hpp"

namespace rispar {
namespace {

std::vector<Match> drain_full(const Engine& engine, std::string_view text,
                              const QueryOptions& options) {
  StreamSession session = engine.stream(options);
  session.feed(text);
  return session.take_matches();
}

TEST(Checkpoint, ResumeContinuesByteExact) {
  const std::string text = "xx ababab yy abab z ab ababab";
  for (const BeginMode mode : {BeginMode::kSeparator, BeginMode::kExact}) {
    const QueryOptions options{.chunks = 3, .positions = true, .begin_mode = mode};
    const Engine engine(Pattern::compile("(ab)+"), {.threads = 2});
    const std::vector<Match> oracle =
        engine.find_all(text, {.chunks = 3, .begin_mode = mode});
    const std::vector<Match> uninterrupted = drain_full(engine, text, options);
    ASSERT_EQ(uninterrupted, oracle) << begin_mode_name(mode);

    for (const std::size_t cut : {std::size_t{0}, std::size_t{5}, std::size_t{13},
                                  text.size()}) {
      StreamSession first = engine.stream(options);
      first.feed(text.substr(0, cut));
      std::vector<Match> collected = first.take_matches();
      const std::string blob = first.checkpoint();

      StreamSession second = engine.resume_stream(blob, options);
      EXPECT_EQ(second.bytes_consumed(), cut);
      second.feed(text.substr(cut));
      for (const Match& match : second.take_matches()) collected.push_back(match);
      EXPECT_EQ(collected, oracle)
          << begin_mode_name(mode) << " cut at " << cut;
    }
  }
}

TEST(Checkpoint, ResumeOnAFreshEngineIsEquivalent) {
  const std::string text = "the cat sat on the mat with a rat";
  const QueryOptions options{.chunks = 2, .positions = true,
                             .begin_mode = BeginMode::kExact};
  const Engine first(Pattern::compile("[a-z]at"), {.threads = 2});
  StreamSession session = first.stream(options);
  session.feed(text.substr(0, 14));
  std::vector<Match> collected = session.take_matches();
  const std::string blob = session.checkpoint();

  // A different Engine over the same source — the cross-process shape.
  const Engine second(Pattern::compile("[a-z]at"), {.threads = 2});
  StreamSession resumed = second.resume_stream(blob, options);
  resumed.feed(text.substr(14));
  for (const Match& match : resumed.take_matches()) collected.push_back(match);
  EXPECT_EQ(collected, second.find_all(text, {.begin_mode = BeginMode::kExact}));
}

TEST(Checkpoint, DecisionOnlySessionsRoundTrip) {
  const std::string text = "abababab";
  for (const Variant variant :
       {Variant::kDfa, Variant::kNfa, Variant::kRid, Variant::kSfa}) {
    const QueryOptions options{.variant = variant, .chunks = 2};
    const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
    StreamSession session = engine.stream(options);
    session.feed(text.substr(0, 3));
    const std::string blob = session.checkpoint();
    StreamSession resumed = engine.resume_stream(blob, options);
    EXPECT_EQ(resumed.accepted(), session.accepted()) << variant_name(variant);
    resumed.feed(text.substr(3));
    session.feed(text.substr(3));
    EXPECT_EQ(resumed.accepted(), session.accepted()) << variant_name(variant);
    EXPECT_TRUE(resumed.accepted()) << variant_name(variant);
  }
}

TEST(Checkpoint, FreshSessionCheckpointResumesFresh) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  const QueryOptions options{.positions = true};
  StreamSession fresh = engine.stream(options);
  StreamSession resumed = engine.resume_stream(fresh.checkpoint(), options);
  EXPECT_EQ(resumed.bytes_consumed(), 0u);
  resumed.feed("xaby");
  EXPECT_EQ(resumed.take_matches(), engine.find_all("xaby"));
}

TEST(Checkpoint, MultiPatternRoundTrip) {
  const std::string text = "error: timeout after 30ms, then error again";
  for (const BeginMode mode : {BeginMode::kSeparator, BeginMode::kExact}) {
    const QueryOptions options{.chunks = 2, .begin_mode = mode};
    const PatternSet set =
        PatternSet::compile({"error", "[0-9]+ms", "after|then"}, {.threads = 2});
    const std::vector<Match> oracle = set.find_all(text, options);

    MultiStreamSession session = set.stream_find(options);
    session.feed(text.substr(0, 21));
    std::vector<Match> collected = session.take_matches();
    const std::string blob = session.checkpoint();

    MultiStreamSession resumed = set.resume_stream(blob, options);
    EXPECT_EQ(resumed.bytes_consumed(), 21u);
    resumed.feed(text.substr(21));
    for (const Match& match : resumed.take_matches()) collected.push_back(match);
    EXPECT_EQ(collected, oracle) << begin_mode_name(mode);
  }
}

TEST(Checkpoint, UndrainedMatchesReject) {
  const Engine engine(Pattern::compile("a"), {.threads = 2});
  StreamSession session = engine.stream({.positions = true});
  session.feed("aaa");
  EXPECT_THROW((void)session.checkpoint(), ValidationError);
  (void)session.take_matches();
  EXPECT_NO_THROW((void)session.checkpoint());
}

TEST(Checkpoint, WrongPatternRejects) {
  const QueryOptions options{.positions = true};
  const Engine cats(Pattern::compile("cat"), {.threads = 2});
  const Engine dogs(Pattern::compile("dog"), {.threads = 2});
  StreamSession session = cats.stream(options);
  session.feed("the cat");
  (void)session.take_matches();
  const std::string blob = session.checkpoint();
  EXPECT_THROW((void)dogs.resume_stream(blob, options), ValidationError);
  EXPECT_NO_THROW((void)cats.resume_stream(blob, options));
}

TEST(Checkpoint, SessionShapeMismatchesReject) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  const QueryOptions options{.variant = Variant::kRid, .chunks = 2,
                             .positions = true};
  StreamSession session = engine.stream(options);
  session.feed("xabx");
  (void)session.take_matches();
  const std::string blob = session.checkpoint();

  QueryOptions wrong_variant = options;
  wrong_variant.variant = Variant::kDfa;
  EXPECT_THROW((void)engine.resume_stream(blob, wrong_variant), ValidationError);

  QueryOptions wrong_positions = options;
  wrong_positions.positions = false;
  EXPECT_THROW((void)engine.resume_stream(blob, wrong_positions), ValidationError);

  QueryOptions wrong_mode = options;
  wrong_mode.begin_mode = BeginMode::kExact;
  EXPECT_THROW((void)engine.resume_stream(blob, wrong_mode), ValidationError);
}

TEST(Checkpoint, SingleAndMultiBlobsDoNotCross) {
  const QueryOptions options{.positions = true};
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  const PatternSet set = PatternSet::compile({"ab"}, {.threads = 2});
  StreamSession single = engine.stream(options);
  MultiStreamSession multi = set.stream_find({});
  EXPECT_THROW((void)set.resume_stream(single.checkpoint(), {}), ValidationError);
  EXPECT_THROW((void)engine.resume_stream(multi.checkpoint(), options),
               ValidationError);
}

TEST(Checkpoint, FleetSizeAndOrderMismatchReject) {
  const PatternSet pair = PatternSet::compile({"cat", "dog"}, {.threads = 2});
  const PatternSet swapped = PatternSet::compile({"dog", "cat"}, {.threads = 2});
  const PatternSet triple =
      PatternSet::compile({"cat", "dog", "fox"}, {.threads = 2});
  MultiStreamSession session = pair.stream_find({});
  session.feed("a cat and a dog");
  (void)session.take_matches();
  const std::string blob = session.checkpoint();
  EXPECT_THROW((void)swapped.resume_stream(blob, {}), ValidationError);
  EXPECT_THROW((void)triple.resume_stream(blob, {}), ValidationError);
  EXPECT_NO_THROW((void)pair.resume_stream(blob, {}));
}

TEST(Checkpoint, PoisonedSessionsCannotCheckpoint) {
  const Engine engine(Pattern::compile("a+"), {.threads = 2});
  CancelSource cancel;
  cancel.request_cancel();
  StreamSession session =
      engine.stream({.positions = true, .cancel = cancel.token()});
  EXPECT_THROW(session.feed("aaaa"), QueryCancelled);
  ASSERT_TRUE(session.poisoned());
  EXPECT_THROW((void)session.checkpoint(), ValidationError);
}

TEST(Checkpoint, EveryTruncationThrows) {
  const QueryOptions options{.positions = true, .begin_mode = BeginMode::kExact};
  const Engine engine(Pattern::compile("(ab)+"), {.threads = 2});
  StreamSession session = engine.stream(options);
  session.feed("xxabababyy");
  (void)session.take_matches();
  const std::string blob = session.checkpoint();
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(
        (void)engine.resume_stream(std::string_view(blob).substr(0, len), options),
        ValidationError)
        << "truncated to " << len;
  }
}

TEST(Checkpoint, RandomByteFlipsThrow) {
  const QueryOptions options{.chunks = 2, .positions = true,
                             .begin_mode = BeginMode::kExact};
  const Engine engine(Pattern::compile("a(b|c)*d"), {.threads = 2});
  StreamSession session = engine.stream(options);
  session.feed("zabbcbd abcd abd");
  (void)session.take_matches();
  const std::string blob = session.checkpoint();

  Prng prng(77);
  for (int flip = 0; flip < 300; ++flip) {
    std::string corrupt = blob;
    const std::size_t at = prng.pick_index(corrupt.size());
    const char delta = static_cast<char>(1 + prng.pick_index(255));
    corrupt[at] = static_cast<char>(corrupt[at] ^ delta);
    EXPECT_THROW((void)engine.resume_stream(corrupt, options), ValidationError)
        << "flip " << flip << " at byte " << at;
  }
}

TEST(Checkpoint, TrailingBytesReject) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  const QueryOptions options{.positions = true};
  StreamSession session = engine.stream(options);
  session.feed("ab");
  (void)session.take_matches();
  std::string blob = session.checkpoint();
  blob.push_back('\0');  // breaks the checksum — still a typed reject
  EXPECT_THROW((void)engine.resume_stream(blob, options), ValidationError);
}

TEST(Checkpoint, FingerprintIsContentNotShape) {
  // "a" and "b" have identical minimal-DFA SHAPES; only the byte classes
  // differ. The fingerprint must still tell them apart.
  EXPECT_NE(checkpoint::pattern_fingerprint(Pattern::compile("a")),
            checkpoint::pattern_fingerprint(Pattern::compile("b")));
  EXPECT_EQ(checkpoint::pattern_fingerprint(Pattern::compile("a(b|c)*")),
            checkpoint::pattern_fingerprint(Pattern::compile("a(b|c)*")));
}

}  // namespace
}  // namespace rispar
