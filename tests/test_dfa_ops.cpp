#include "automata/dfa_ops.hpp"

#include <gtest/gtest.h>

#include "automata/equivalence.hpp"
#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "regex/printer.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

Dfa dfa_of(const std::string& pattern) {
  return determinize(glushkov_nfa(parse_regex(pattern)));
}

TEST(DfaComplement, FlipsMembership) {
  const Dfa dfa = dfa_of("(ab)*");
  const Dfa complement = dfa_complement(dfa);
  for (const auto& word : std::vector<std::vector<Symbol>>{
           {}, {0, 1}, {0, 1, 0, 1}, {1, 0}, {0}, {0, 0}}) {
    EXPECT_NE(dfa.accepts(word), complement.accepts(word));
  }
}

TEST(DfaComplement, DoubleComplementIsIdentityLanguage) {
  const Dfa dfa = dfa_of("a(ba)*");
  EXPECT_TRUE(dfa_equivalent(dfa, dfa_complement(dfa_complement(dfa))));
}

TEST(DfaIntersection, KeepsCommonWords) {
  // (ab)* ∩ (ab|ba)* has the same even-pair structure as (ab)*.
  const Dfa i = dfa_intersection(dfa_of("(ab)*"), dfa_of("(ab|ba)*"));
  EXPECT_TRUE(i.accepts(std::vector<Symbol>{}));
  EXPECT_TRUE(i.accepts(std::vector<Symbol>{0, 1}));
  EXPECT_FALSE(i.accepts(std::vector<Symbol>{1, 0}));  // in rhs only
  EXPECT_TRUE(dfa_equivalent(i, dfa_of("(ab)*")));
}

TEST(DfaIntersection, DisjointLanguagesAreEmpty) {
  // Both patterns mention both letters so their symbol classes align
  // ('a' -> 0, 'b' -> 1 in each SymbolMap).
  const Dfa i = dfa_intersection(dfa_of("a[ab]*"), dfa_of("b[ab]*"));
  EXPECT_TRUE(dfa_empty(i));
}

TEST(DfaUnion, AcceptsEitherSide) {
  // L(a) = {aa, b^9}, L(b) = {bb, a^9}: aligned two-class alphabets.
  const Dfa u = dfa_union(dfa_of("a{2}|b{9}"), dfa_of("b{2}|a{9}"));
  EXPECT_TRUE(u.accepts(std::vector<Symbol>{0, 0}));
  EXPECT_TRUE(u.accepts(std::vector<Symbol>{1, 1}));
  EXPECT_FALSE(u.accepts(std::vector<Symbol>{0, 1}));
  EXPECT_FALSE(u.accepts(std::vector<Symbol>{0, 0, 0}));
}

TEST(DfaEmpty, DetectsEmptyAndNonEmpty) {
  Dfa empty = Dfa::with_identity_alphabet(1);
  empty.add_state(false);
  empty.set_initial(0);
  EXPECT_TRUE(dfa_empty(empty));
  EXPECT_FALSE(dfa_empty(dfa_of("a*")));
}

TEST(DfaShortestMember, FindsShortest) {
  EXPECT_EQ(dfa_shortest_member(dfa_of("a*")), std::vector<Symbol>{});
  EXPECT_EQ(dfa_shortest_member(dfa_of("a+")), (std::vector<Symbol>{0}));
  const auto word = dfa_shortest_member(dfa_of("(ab){2,}"));
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(word->size(), 4u);
  EXPECT_TRUE(dfa_of("(ab){2,}").accepts(*word));
}

TEST(DfaShortestMember, NulloptOnEmpty) {
  const Dfa i = dfa_intersection(dfa_of("a[ab]*"), dfa_of("b[ab]*"));
  EXPECT_FALSE(dfa_shortest_member(i).has_value());
}

TEST(DfaCensus, CountsWordsPerLength) {
  // (a|b)* over 2 symbols: 2^n words of length n.
  const std::vector<std::uint64_t> census = dfa_census(dfa_of("(a|b)*"), 6);
  ASSERT_EQ(census.size(), 7u);
  for (std::size_t length = 0; length <= 6; ++length)
    EXPECT_EQ(census[length], 1ull << length);
}

TEST(DfaCensus, MatchesExplicitEnumeration) {
  const Dfa dfa = dfa_of("(ab|ba)*");
  const auto census = dfa_census(dfa, 6);
  // Enumerate words of length 4 over {a,b} by hand.
  std::uint64_t count = 0;
  for (int bits = 0; bits < 16; ++bits) {
    std::vector<Symbol> word{(bits >> 3) & 1, (bits >> 2) & 1, (bits >> 1) & 1,
                             bits & 1};
    if (dfa.accepts(word)) ++count;
  }
  EXPECT_EQ(census[4], count);
}

// Cross-oracle: A ≡ B iff the symmetric difference is empty. Must agree
// with the Hopcroft–Karp union-find checker on random regex pairs.
class BooleanOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BooleanOracle, SymmetricDifferenceAgreesWithEquivalenceChecker) {
  Prng prng(GetParam());
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 8;
  const RePtr re_a = random_regex(prng, config);
  const RePtr re_b = prng.next_bool(0.3) ? re_a : random_regex(prng, config);
  const Dfa a = determinize(glushkov_nfa(re_a));
  Dfa b = determinize(glushkov_nfa(re_b));
  // The product needs aligned symbol ids: rebuild b over a's SymbolMap by
  // translating through bytes — here both use "ab" so ids already align
  // when both automata saw both letters; otherwise skip.
  if (a.num_symbols() != b.num_symbols()) GTEST_SKIP() << "alphabet mismatch";

  const Dfa difference = dfa_union(dfa_intersection(a, dfa_complement(b)),
                                   dfa_intersection(b, dfa_complement(a)));
  EXPECT_EQ(dfa_empty(difference), dfa_equivalent(a, b))
      << regex_to_string(re_a) << " vs " << regex_to_string(re_b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BooleanOracle, ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace rispar
