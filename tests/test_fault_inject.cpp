// The fault-injection sweep (ISSUE 6 tentpole part 4, acceptance: "the
// sweep runs green under ASan/UBSan — every injected fault surfaces as a
// typed error or a clean result, never a crash, leak or wedged pool").
//
// Self-skips unless the library was built with -DRISPAR_FAULT_INJECT=ON
// (the sanitize and long-fuzz CI legs build that way). Each swept seed arms
// the harness at a given rate, runs the full query battery — construction,
// one-shot recognize/count/find on every variant, streaming, PatternSet —
// and accepts exactly three outcomes per call: a correct result, a
// QueryError subclass, fault::FaultInjected or std::bad_alloc. Anything
// else (crash, terminate, wedge) fails the test run itself. After every
// battery the harness is disarmed and the SAME engine must answer
// correctly — injected faults never corrupt surviving state.
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/pattern_set.hpp"
#include "parallel/match_count.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "util/fault_inject.hpp"

namespace rispar {
namespace {

/// Outcome classifier: run `body`, swallowing exactly the legal failure
/// shapes. Returns true when the call completed (so the caller may check
/// the result), false when a typed fault surfaced. Anything else escapes
/// and fails the test.
template <typename Body>
bool survives(Body&& body) {
  try {
    body();
    return true;
  } catch (const QueryError&) {  // governance, validation, budgets
  } catch (const fault::FaultInjected&) {
  } catch (const std::bad_alloc&) {  // allocation sites
  }
  return false;
}

/// One full pass over the public query surface. Every call is wrapped in
/// survives(); the assertions only ever check completed calls.
void run_battery(const Engine& engine) {
  const std::string text = "abba abab baab abba";
  for (const Variant variant :
       {Variant::kDfa, Variant::kNfa, Variant::kRid, Variant::kSfa}) {
    survives([&] {
      const QueryOptions options{.variant = variant, .chunks = 3};
      (void)engine.recognize(text, options);
    });
  }
  survives([&] { (void)engine.count(text, {.chunks = 2}); });
  survives([&] { (void)engine.find(text, {.chunks = 2}); });
  survives([&] {
    const std::vector<std::string_view> texts{"abab", "ba", "abba"};
    (void)engine.match_all(texts, {.chunks = 2});
  });
  survives([&] {
    StreamSession stream = engine.stream({.chunks = 2, .positions = true});
    for (const std::string_view window : {"abba ", "abab ", "baab"}) {
      try {
        stream.feed(window);
      } catch (const ValidationError&) {
        break;  // poisoned by an earlier injected trip — documented behavior
      }
    }
    (void)stream.take_matches();  // drains whatever survived, poisoned or not
  });
}

/// Fixture so the harness is ALWAYS disarmed when a test exits, however it
/// exits — an armed harness leaking into later suites would fault their
/// pool tasks and turn unrelated tests into crashes.
class FaultInject : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled)
      GTEST_SKIP() << "library built without RISPAR_FAULT_INJECT";
  }
  void TearDown() override { fault::disable(); }
};

TEST_F(FaultInject, SeedSweepNeverCrashesAndStateSurvives) {
  std::uint64_t fired_total = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    // Construction under fire: subset/SFA/packed allocation sites may trip.
    fault::configure(seed, 0.02);
    survives([&] {
      const Engine engine(Pattern::compile("(ab|ba)*"), {.threads = 2});
      run_battery(engine);
      run_battery(engine);  // second pass: the pool survived the first
    });
    fired_total += fault::fire_count();

    // Disarmed rerun: the same configuration must answer correctly — no
    // injected fault may have corrupted anything that survived.
    const fault::ScopedDisable clean;
    (void)clean;
    const Engine engine(Pattern::compile("(ab|ba)*"), {.threads = 2});
    EXPECT_TRUE(engine.recognize("abba").accepted) << "seed " << seed;
    EXPECT_FALSE(engine.recognize("aba").accepted) << "seed " << seed;
    const Engine counter(Pattern::compile("ab"), {.threads = 2});
    EXPECT_EQ(counter.count("abba abab").matches, 3u) << "seed " << seed;
  }
  // A harness that never fires is a dead harness — fail loudly.
  EXPECT_GT(fired_total, 0u);
}

TEST_F(FaultInject, HighRateBatteryStillSurfacesTypedErrorsOnly) {
  // 30% per draw: nearly every query path trips somewhere. The point is
  // the worst case — even saturated with faults, nothing crashes and the
  // pool keeps accepting work.
  fault::configure(0xDEADu, 0.3);
  for (int round = 0; round < 8; ++round) {
    survives([&] {
      const Engine engine(Pattern::compile("a(b|c)*d"), {.threads = 2});
      run_battery(engine);
    });
  }
  EXPECT_GT(fault::fire_count(), 0u);

  const fault::ScopedDisable clean;
  (void)clean;
  const Engine engine(Pattern::compile("a(b|c)*d"), {.threads = 2});
  EXPECT_TRUE(engine.recognize("abcbcd").accepted);
}

TEST_F(FaultInject, PatternSetSurvivesInjectedFaults) {
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    fault::configure(seed, 0.05);
    survives([&] {
      const PatternSet set =
          PatternSet::compile({"ab", "ba", "abba"}, {.threads = 2});
      (void)set.find_all("abba abab baab");
      const std::vector<std::string_view> texts{"abab", "baab"};
      (void)set.find_all(texts);
    });
  }

  const fault::ScopedDisable clean;
  (void)clean;
  const PatternSet set = PatternSet::compile({"ab", "ba"}, {.threads = 2});
  EXPECT_EQ(set.find("abba").matches, 2u);
}

TEST_F(FaultInject, ReverseBuildFaultLeavesThePatternRetryable) {
  // Compile clean, then arm at rate 1.0: the reverse-begins build is a
  // serial path whose FIRST probe is the reverse.build site, so the throw
  // is deterministic. The lazy once-flag must stay unset on failure — the
  // SAME Pattern object retries successfully after disarm, and the rebuilt
  // artifact serves exact begins correctly.
  fault::disable();
  const Pattern pattern = Pattern::compile("(ab|ba)*a");
  fault::configure(11, 1.0);
  EXPECT_THROW((void)pattern.reverse_begins(), fault::FaultInjected);
  EXPECT_EQ(fault::fire_count(), 1u);

  fault::disable();
  const ReverseBegins& reverse = pattern.reverse_begins();  // the retry
  const Engine engine(pattern, {.threads = 2});
  const QueryResult exact =
      engine.find("abbaa", {.begin_mode = BeginMode::kExact});
  const Dfa& searcher = engine.searcher();
  const QueryResult oracle = find_matches_serial(
      searcher, searcher.symbols().translate("abbaa"), 0, &reverse.dfa);
  EXPECT_EQ(exact.positions, oracle.positions);
  EXPECT_GT(exact.matches, 0u);
}

TEST_F(FaultInject, MultiStreamMergeSiteFiresAndPoisons) {
  // A zero-pattern session fans out no pool tasks, so the feed's FIRST
  // draw is the mpstream.merge probe itself — rate 1.0 hits exactly that
  // site. The session must poison, reject further feeds with the
  // documented ValidationError, and come back clean after reset().
  fault::disable();
  const PatternSet empty_set(std::vector<Pattern>{}, {.threads = 2});
  MultiStreamSession session = empty_set.stream_find();
  fault::configure(21, 1.0);
  EXPECT_THROW(session.feed("abba"), fault::FaultInjected);
  EXPECT_EQ(fault::fire_count(), 1u);
  EXPECT_TRUE(session.poisoned());
  EXPECT_THROW(session.feed("x"), ValidationError);

  fault::disable();
  session.reset();
  EXPECT_FALSE(session.poisoned());
  session.feed("abba");
  EXPECT_EQ(session.matches(), 0u);
  EXPECT_EQ(session.bytes_consumed(), 4u);
}

TEST_F(FaultInject, MultiStreamSweepSurvivesAndRecovers) {
  // Real multi-pattern sessions under a seed sweep: any site may trip
  // (pool tasks, reverse builds under kExact, the merge). Every outcome
  // must be a typed error or a correct merge; a poisoned session keeps
  // draining and a fresh session answers the one-shot list after disarm.
  for (std::uint64_t seed = 200; seed < 208; ++seed) {
    fault::configure(seed, 0.05);
    const BeginMode mode =
        seed % 2 == 0 ? BeginMode::kSeparator : BeginMode::kExact;
    survives([&] {
      const PatternSet set =
          PatternSet::compile({"ab", "ba", "a(b|c)*"}, {.threads = 2});
      MultiStreamSession session = set.stream_find({.begin_mode = mode});
      for (const std::string_view window : {"abba ", "abab ", "bacb"}) {
        try {
          session.feed(window);
        } catch (const ValidationError&) {
          break;  // poisoned by an earlier injected trip
        }
      }
      (void)session.take_matches();
    });
  }

  const fault::ScopedDisable clean;
  (void)clean;
  const PatternSet set = PatternSet::compile({"ab", "ba"}, {.threads = 2});
  MultiStreamSession session = set.stream_find();
  session.feed("abba abab");
  EXPECT_EQ(session.take_matches(), set.find_all("abba abab"));
}

TEST_F(FaultInject, CheckpointEncodeSiteFiresAndLeavesTheSessionUsable) {
  // Rate 1.0 on a drained session: the serial checkpoint path's FIRST draw
  // is the checkpoint.encode site, so the throw is deterministic. The
  // failed encode must leave the carry untouched — the SAME session
  // checkpoints after disarm and the blob resumes byte-exact.
  fault::disable();
  const QueryOptions options{.positions = true};
  const Engine engine(Pattern::compile("(ab)+"), {.threads = 2});
  StreamSession session = engine.stream(options);
  session.feed("xxababy ");
  std::vector<Match> collected = session.take_matches();
  fault::configure(31, 1.0);
  EXPECT_THROW((void)session.checkpoint(), fault::FaultInjected);
  EXPECT_EQ(fault::fire_count(), 1u);

  fault::disable();
  const std::string blob = session.checkpoint();
  StreamSession resumed = engine.resume_stream(blob, options);
  resumed.feed("abab");
  for (const Match& m : resumed.take_matches()) collected.push_back(m);
  EXPECT_EQ(collected, engine.find_all("xxababy abab"));
}

TEST_F(FaultInject, CheckpointDecodeSiteFiresAndTheBlobStaysGood) {
  fault::disable();
  const QueryOptions options{.positions = true};
  const Engine engine(Pattern::compile("a(b|c)*d"), {.threads = 2});
  StreamSession session = engine.stream(options);
  session.feed("zabbcd ab");
  (void)session.take_matches();
  const std::string blob = session.checkpoint();

  fault::configure(32, 1.0);
  EXPECT_THROW((void)engine.resume_stream(blob, options), fault::FaultInjected);
  EXPECT_GT(fault::fire_count(), 0u);

  // The blob was only read, never consumed: the disarmed retry resumes.
  fault::disable();
  StreamSession resumed = engine.resume_stream(blob, options);
  EXPECT_EQ(resumed.bytes_consumed(), 9u);
}

TEST_F(FaultInject, CheckpointRoundTripSweepSurvivesAndRecovers) {
  // Seed sweep over the full round trip — encode, decode, and the feed
  // sites on both sides of the cut may all trip. Every outcome must be a
  // typed error or a correct resume; the disarmed rerun answers exactly.
  for (std::uint64_t seed = 400; seed < 408; ++seed) {
    fault::configure(seed, 0.05);
    const BeginMode mode =
        seed % 2 == 0 ? BeginMode::kSeparator : BeginMode::kExact;
    const QueryOptions options{.positions = true, .begin_mode = mode};
    survives([&] {
      const Engine engine(Pattern::compile("(ab|ba)+"), {.threads = 2});
      StreamSession session = engine.stream(options);
      try {
        session.feed("abba ab");
      } catch (const ValidationError&) {
        return;  // poisoned by an injected trip — cannot checkpoint
      }
      (void)session.take_matches();
      const std::string blob = session.checkpoint();
      StreamSession resumed = engine.resume_stream(blob, options);
      try {
        resumed.feed("ba abba");
      } catch (const ValidationError&) {
        return;
      }
      (void)resumed.take_matches();
    });
  }

  const fault::ScopedDisable clean;
  (void)clean;
  const Engine engine(Pattern::compile("(ab|ba)+"), {.threads = 2});
  StreamSession session = engine.stream({.positions = true});
  session.feed("abba ");
  std::vector<Match> collected = session.take_matches();
  StreamSession resumed = engine.resume_stream(session.checkpoint(),
                                               {.positions = true});
  resumed.feed("baab");
  for (const Match& m : resumed.take_matches()) collected.push_back(m);
  EXPECT_EQ(collected, engine.find_all("abba baab"));
}

TEST_F(FaultInject, ServerDrainSiteSurfacesATypedErrorAndTheDrainCompletes) {
  // The server.drain site fires inside the drain's checkpoint emission:
  // armed, the client gets an ERROR frame instead of a DRAINING blob — but
  // the terminal frame and the close still happen, so the drain never
  // wedges. Disarmed, the same sequence delivers a resumable checkpoint.
  namespace rd = rispard;
  for (const bool armed : {true, false}) {
    fault::disable();
    rd::ServerConfig config;
    config.drain_deadline_ms = 20000;
    rd::Server server({"ab"}, config);
    std::thread thread([&] { server.run(); });
    const int fd = rd::connect_backoff(server.port());
    ASSERT_GE(fd, 0);
    rd::FrameReader reader;
    rd::Frame frame;
    rd::send_all(fd, rd::make_open_session(7, 0, 0, 2));
    ASSERT_TRUE(rd::recv_frame(fd, reader, frame));
    ASSERT_EQ(frame.type, rd::FrameType::kOpened);
    rd::send_all(fd, rd::make_feed(7, "xabx"));
    do {
      ASSERT_TRUE(rd::recv_frame(fd, reader, frame));
    } while (frame.type == rd::FrameType::kMatches);
    ASSERT_EQ(frame.type, rd::FrameType::kFed);

    if (armed) fault::configure(41, 1.0);
    server.stop(true);

    ASSERT_TRUE(rd::recv_frame(fd, reader, frame)) << "armed=" << armed;
    if (armed) {
      ASSERT_EQ(frame.type, rd::FrameType::kError);
      rd::PayloadReader payload(frame.payload);
      EXPECT_EQ(payload.get_u32(), 7u);
      EXPECT_EQ(static_cast<rd::ErrorCode>(payload.get_u8()),
                rd::ErrorCode::kInternal);
      EXPECT_GT(fault::fire_count(), 0u);
    } else {
      ASSERT_EQ(frame.type, rd::FrameType::kDraining);
      rd::PayloadReader payload(frame.payload);
      EXPECT_EQ(payload.get_u32(), 7u);
      payload.get_u32();  // pattern id
      EXPECT_FALSE(payload.rest().empty());  // a real, resumable blob
    }
    fault::disable();
    // Either way the terminal DRAINING frame and the close follow.
    ASSERT_TRUE(rd::recv_frame(fd, reader, frame));
    ASSERT_EQ(frame.type, rd::FrameType::kDraining);
    {
      rd::PayloadReader payload(frame.payload);
      EXPECT_EQ(payload.get_u32(), rd::kNoSession);
    }
    EXPECT_FALSE(rd::recv_frame(fd, reader, frame));  // EOF
    ::close(fd);
    thread.join();
  }
}

TEST_F(FaultInject, SameSeedSameFireCount) {
  // Determinism anchor: the same seed over the same single-threaded draw
  // sequence fires identically — a failing sweep seed reproduces exactly.
  // (Pool-task draws interleave across workers, so the battery here stays
  // on the serial construction path: compile + searcher build only.)
  const auto one_run = [] {
    survives([] {
      const Pattern pattern = Pattern::compile("(a|b)*abb");
      const Engine engine(pattern, {.threads = 1});
      (void)engine.count("abb aabb babb", {.chunks = 1});
    });
    return fault::fire_count();
  };
  fault::configure(42, 0.5);
  const std::uint64_t first = one_run();
  fault::configure(42, 0.5);
  const std::uint64_t second = one_run();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace rispar
