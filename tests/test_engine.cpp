#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <string_view>

#include "automata/glushkov.hpp"
#include "automata/random_nfa.hpp"
#include "automata/thompson.hpp"
#include "automata/timbuk.hpp"
#include "core/serial_match.hpp"
#include "core/sfa.hpp"
#include "helpers.hpp"
#include "parallel/match_count.hpp"
#include "regex/parser.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

constexpr Variant kAllVariants[] = {Variant::kDfa, Variant::kNfa, Variant::kRid,
                                    Variant::kSfa};

TEST(Pattern, CompileBuildsConsistentAutomata) {
  const Pattern pattern = Pattern::compile("(ab)*");
  EXPECT_FALSE(pattern.nfa().has_epsilon());
  EXPECT_GE(pattern.min_dfa().num_states(), 1);
  EXPECT_LE(pattern.ridfa().initial_count(), pattern.nfa().num_states());
}

TEST(Pattern, FromNfaWithEpsilonGetsCleaned) {
  const Nfa thompson = thompson_nfa(parse_regex("(a|b)*abb"));
  const Engine engine(Pattern::from_nfa(thompson));
  EXPECT_FALSE(engine.pattern().nfa().has_epsilon());
  EXPECT_TRUE(engine.accepts("abb"));
  EXPECT_FALSE(engine.accepts("ab"));
}

TEST(Pattern, CopyIsSharedOwnership) {
  const Pattern pattern = Pattern::compile("(ab)*");
  const Pattern copy = pattern;
  EXPECT_EQ(&pattern.min_dfa(), &copy.min_dfa());  // same compiled machines
}

TEST(Pattern, InvalidRegexPropagates) {
  EXPECT_THROW(Pattern::compile("(unclosed"), RegexError);
}

TEST(Pattern, FromTimbukRoundTrip) {
  const std::string text = timbuk_to_string(testing::fig1_nfa());
  const Engine engine(Pattern::from_timbuk(text), {.threads = 2});
  EXPECT_TRUE(engine.accepts(std::span<const Symbol>(testing::fig1_string())));
  const std::vector<Symbol> rejected{1};  // "b" alone is not in the language
  EXPECT_FALSE(engine.accepts(std::span<const Symbol>(rejected)));
}

TEST(Engine, VariantNamesAreStable) {
  EXPECT_STREQ(variant_name(Variant::kDfa), "DFA");
  EXPECT_STREQ(variant_name(Variant::kNfa), "NFA");
  EXPECT_STREQ(variant_name(Variant::kRid), "RID");
  EXPECT_STREQ(variant_name(Variant::kSfa), "SFA");
}

TEST(Engine, RecognizeDispatchesAllVariants) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 4});
  for (const Variant variant : kAllVariants) {
    const QueryResult result =
        engine.recognize("abababab", {.variant = variant, .chunks = 3});
    EXPECT_TRUE(result.accepted) << variant_name(variant);
    EXPECT_FALSE(engine.recognize("aba", {.variant = variant, .chunks = 3}).accepted)
        << variant_name(variant);
  }
}

TEST(Engine, TranslateMatchesManualSymbolMap) {
  const Engine engine(Pattern::compile("[ab]c"));
  const auto via_engine = engine.translate("acz");
  const auto manual = engine.pattern().symbols().translate("acz");
  EXPECT_EQ(via_engine, manual);
  ASSERT_EQ(via_engine.size(), 3u);
  EXPECT_NE(via_engine[0], via_engine[1]);
  EXPECT_EQ(via_engine[2], SymbolMap::kUnmapped);
  // Byte-level and pre-translated entry points agree.
  EXPECT_EQ(engine.recognize("acz").accepted,
            engine.recognize(std::span<const Symbol>(via_engine)).accepted);
}

// Alien bytes (outside the pattern's symbol classes) must reject — never
// UB — on every variant. "[ab]*" is the regression witness: its chunk
// automaton is TOTAL on its own alphabet, so the seed SFA had no all-dead
// mapping and returned a live arrival state on alien input (accepting).
TEST(Engine, AlienBytesRejectNotUb) {
  for (const char* pattern : {"[ab]*", "a+", "(ab|ba)*"}) {
    const Engine engine(Pattern::compile(pattern), {.threads = 2});
    for (const Variant variant : kAllVariants) {
      for (const std::size_t chunks : {1u, 2u, 5u}) {
        const QueryResult result =
            engine.recognize("aZb", {.variant = variant, .chunks = chunks});
        EXPECT_FALSE(result.accepted)
            << pattern << " " << variant_name(variant) << " c=" << chunks;
      }
    }
  }
}

TEST(Engine, ValidationRejectsUnsupportedKnobs) {
  const Engine engine(Pattern::compile("(ab)*"));
  const std::string_view text = "abab";
  // Convergence: deterministic single-run devices only (DFA, RID).
  EXPECT_THROW(engine.recognize(text, {.variant = Variant::kNfa, .convergence = true}),
               QueryError);
  EXPECT_THROW(engine.recognize(text, {.variant = Variant::kSfa, .convergence = true}),
               QueryError);
  EXPECT_NO_THROW(
      engine.recognize(text, {.variant = Variant::kDfa, .convergence = true}));
  EXPECT_NO_THROW(
      engine.recognize(text, {.variant = Variant::kRid, .convergence = true}));
  // Kernel selection follows the same split.
  EXPECT_THROW(engine.recognize(text, {.variant = Variant::kNfa,
                                       .kernel = DetKernel::kReference}),
               QueryError);
  EXPECT_NO_THROW(engine.recognize(text, {.variant = Variant::kRid,
                                          .kernel = DetKernel::kReference}));
  // Look-back and tree-join: DFA device only.
  EXPECT_THROW(engine.recognize(text, {.variant = Variant::kRid, .lookback = 4}),
               QueryError);
  EXPECT_NO_THROW(engine.recognize(text, {.variant = Variant::kDfa, .lookback = 4}));
  EXPECT_THROW(engine.recognize(text, {.variant = Variant::kRid, .tree_join = true}),
               QueryError);
  EXPECT_NO_THROW(engine.recognize(text, {.variant = Variant::kDfa, .tree_join = true}));
  // Streaming rejects lookback/tree_join even where one-shot allows them —
  // on the Engine path and on the direct device path alike.
  EXPECT_THROW(engine.stream({.variant = Variant::kDfa, .lookback = 4}), QueryError);
  EXPECT_THROW(engine.stream({.variant = Variant::kDfa, .tree_join = true}), QueryError);
  EXPECT_NO_THROW(engine.stream({.variant = Variant::kDfa, .convergence = true}));
  {
    StreamCarry carry;
    const std::vector<Symbol> window{0, 1};
    EXPECT_THROW(engine.device(Variant::kDfa)
                     .stream_feed(carry, window, engine.pool(),
                                  {.variant = Variant::kDfa, .lookback = 4}),
                 QueryError);
  }
  // Counting honors chunks + convergence, nothing else.
  EXPECT_NO_THROW(engine.count(text, {.chunks = 3, .convergence = true}));
  EXPECT_THROW(engine.count(text, {.kernel = DetKernel::kReference}), QueryError);
  EXPECT_THROW(engine.count(text, {.lookback = 2}), QueryError);
  EXPECT_THROW(engine.count(text, {.tree_join = true}), QueryError);
}

TEST(Engine, SfaBudgetExplosionIsAnError) {
  // A budget of 1 cannot even hold the identity mapping plus one successor.
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2, .sfa_budget = 1});
  EXPECT_EQ(engine.try_device(Variant::kSfa), nullptr);
  EXPECT_THROW(engine.recognize("abab", {.variant = Variant::kSfa}), QueryError);
  // The other devices are untouched.
  EXPECT_TRUE(engine.recognize("abab", {.variant = Variant::kRid}).accepted);
}

TEST(Engine, SubsetBudgetGuardsBlowupRegexes) {
  // The classic subset-construction bomb: (a|b)*a(a|b){k} determinizes to
  // ~2^k states (the DFA must remember the last k symbols). A bounded
  // Engine trips ResourceExhausted at the first count/find instead of
  // consuming unbounded memory — and the searcher stays UNBUILT, so the
  // same Pattern retried through a roomier Engine still works.
  const std::string bomb = "(a|b)*a(a|b)(a|b)(a|b)(a|b)(a|b)(a|b)(a|b)(a|b)";
  const Pattern pattern = Pattern::compile(bomb);
  const Engine tight(pattern, {.threads = 2, .subset_budget = 16});
  try {
    (void)tight.count("abab");
    FAIL() << "the subset budget did not trip";
  } catch (const ResourceExhausted& error) {
    EXPECT_EQ(error.resource(), "subset construction");
    EXPECT_EQ(error.limit(), 16);
    EXPECT_GT(error.observed(), error.limit());
  }
  EXPECT_THROW((void)tight.find("abab"), ResourceExhausted);
  // Recognition never needs the searcher — the same Engine still decides.
  EXPECT_TRUE(tight.recognize("aabbbbbbbb").accepted);

  // Same shared Pattern, bigger budget: the lazy build retries and wins.
  const Engine roomy(pattern, {.threads = 2});
  EXPECT_EQ(roomy.count("abbbbbbbb").matches, 1u);

  // The compile-time limit guards the minimal-DFA determinization too, so
  // a capped compile of the bomb trips the same typed error up front.
  EXPECT_THROW((void)Pattern::compile(bomb, {.max_subset_states = 16}),
               ResourceExhausted);
}

TEST(Engine, CountOccurrencesByteLevel) {
  const Engine engine(Pattern::compile("ab"), {.threads = 2});
  // Arbitrary bytes between occurrences are fine: the searcher's alphabet
  // covers all 256 bytes even though the pattern's classes do not.
  EXPECT_EQ(engine.count("xxabxxab!?").matches, 2u);
  EXPECT_EQ(engine.count("").matches, 0u);
  const Engine overlapping(Pattern::compile("aa"), {.threads = 2});
  EXPECT_EQ(overlapping.count("aaaa").matches, 3u);  // overlaps counted
}

TEST(Engine, MatchAllBatchesManyTexts) {
  const Engine engine(Pattern::compile("(ab|ba)+"), {.threads = 4});
  const std::vector<std::string_view> texts{"abba", "ab", "x", "", "baab", "aab"};
  const auto results = engine.match_all(texts, {.variant = Variant::kRid, .chunks = 2});
  ASSERT_EQ(results.size(), texts.size());
  for (std::size_t i = 0; i < texts.size(); ++i) {
    EXPECT_EQ(results[i].accepted, engine.accepts(texts[i])) << texts[i];
    EXPECT_EQ(
        results[i].accepted,
        engine.recognize(texts[i], {.variant = Variant::kRid, .chunks = 2}).accepted);
  }
}

TEST(Engine, StreamSessionBytesAndSymbols) {
  const Engine engine(Pattern::compile("(ab)*"), {.threads = 2});
  StreamSession session = engine.stream({.variant = Variant::kRid, .chunks = 2});
  session.feed("abab");
  EXPECT_TRUE(session.accepted());
  session.feed("a");
  EXPECT_FALSE(session.accepted());
  session.feed("b");
  EXPECT_TRUE(session.accepted());
  EXPECT_EQ(session.windows(), 3u);
  session.reset();
  EXPECT_TRUE(session.accepted());  // empty string again
}

// ---------------------------------------------------------------------------
// The acceptance property: Engine::recognize / count / stream equal the
// direct device / legacy paths across all variants (including kSfa),
// options, and chunk counts — decisions AND transition counts.
// ---------------------------------------------------------------------------

class EngineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalence, MatchesDirectDevicesAcrossOptions) {
  Prng prng(GetParam());
  RandomRegexConfig config;
  config.alphabet = "abc";
  config.target_size = 10;
  const RePtr re = random_regex(prng, config);
  const Pattern pattern = Pattern::from_nfa(glushkov_nfa(re));
  const Engine engine(pattern, {.threads = 4});

  // The direct (pre-Engine) paths: concrete devices over the same machines.
  const DfaDevice direct_dfa(pattern.min_dfa());
  const NfaDevice direct_nfa(pattern.nfa());
  const RidDevice direct_rid(pattern.ridfa());
  const auto direct_sfa = try_build_sfa(pattern.min_dfa());
  std::optional<SfaDevice> direct_sfa_device;
  if (direct_sfa.has_value()) direct_sfa_device.emplace(*direct_sfa, pattern.min_dfa());

  for (int trial = 0; trial < 6; ++trial) {
    std::string text;
    for (std::size_t i = 0; i < 1 + prng.pick_index(40); ++i)
      text.push_back("abc"[prng.pick_index(3)]);
    const auto input = engine.translate(text);
    const bool oracle = engine.accepts(input);

    for (const std::size_t chunks : {1u, 2u, 5u, 9u}) {
      for (const bool convergence : {false, true}) {
        for (const Variant variant : kAllVariants) {
          const Device* direct = nullptr;
          switch (variant) {
            case Variant::kDfa: direct = &direct_dfa; break;
            case Variant::kNfa: direct = &direct_nfa; break;
            case Variant::kRid: direct = &direct_rid; break;
            case Variant::kSfa:
              if (!direct_sfa_device.has_value()) continue;  // SFA exploded
              direct = &*direct_sfa_device;
              break;
          }
          QueryOptions options{.variant = variant, .chunks = chunks};
          if (convergence) {
            if (!direct->capabilities().convergence) continue;
            options.convergence = true;
          }
          const QueryResult via_engine = engine.recognize(input, options);
          const QueryResult via_device =
              direct->recognize(input, engine.pool(), options);
          EXPECT_EQ(via_engine.accepted, oracle)
              << variant_name(variant) << " c=" << chunks << " conv=" << convergence;
          EXPECT_EQ(via_engine.accepted, via_device.accepted);
          EXPECT_EQ(via_engine.transitions, via_device.transitions)
              << variant_name(variant) << " c=" << chunks << " conv=" << convergence;
          EXPECT_EQ(via_engine.chunks, via_device.chunks);
        }
      }
    }
  }
}

TEST_P(EngineEquivalence, StreamAnySegmentationMatchesOneShot) {
  Prng prng(GetParam() ^ 0xabcdef);
  RandomNfaConfig config;
  config.num_states = 5 + static_cast<std::int32_t>(prng.pick_index(12));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(3));
  const Nfa nfa = random_nfa(prng, config);
  const Pattern pattern = Pattern::from_nfa(nfa);
  const Engine engine(pattern, {.threads = 4});

  for (int trial = 0; trial < 4; ++trial) {
    const auto input = testing::random_word(prng, pattern.nfa().num_symbols(),
                                            1 + prng.pick_index(90));
    for (const Variant variant : kAllVariants) {
      const Device* device = engine.try_device(variant);
      if (device == nullptr) continue;  // SFA exploded
      for (const bool convergence : {false, true}) {
        for (const DetKernel kernel :
             {DetKernel::kFused, DetKernel::kReference, DetKernel::kSimd}) {
          if (convergence && !device->capabilities().convergence) continue;
          if (kernel != DetKernel::kFused && !device->capabilities().kernel_select)
            continue;
          const QueryOptions options{.variant = variant, .chunks = 3,
                                     .convergence = convergence, .kernel = kernel};
          const QueryResult one_shot = engine.recognize(input, options);

          // Single window: decision AND transition count match one-shot.
          StreamSession whole = engine.stream(options);
          whole.feed(std::span<const Symbol>(input));
          EXPECT_EQ(whole.accepted(), one_shot.accepted) << variant_name(variant);
          EXPECT_EQ(whole.transitions(), one_shot.transitions)
              << variant_name(variant) << " conv=" << convergence;

          // Random segmentation: the decision is segmentation-invariant.
          StreamSession session = engine.stream(options);
          std::size_t offset = 0;
          while (offset < input.size()) {
            const std::size_t take =
                std::min(input.size() - offset, 1 + prng.pick_index(25));
            session.feed(std::span<const Symbol>(input.data() + offset, take));
            offset += take;
          }
          EXPECT_EQ(session.accepted(), one_shot.accepted)
              << variant_name(variant) << " conv=" << convergence
              << " trial " << trial;
        }
      }
    }
  }
}

TEST_P(EngineEquivalence, CountMatchesSerialOracleUnderAllModes) {
  Prng prng(GetParam() ^ 0x5eed5);
  RandomRegexConfig config;
  config.alphabet = "ab";
  config.target_size = 8;
  const RePtr re = random_regex(prng, config);
  const Engine engine(Pattern::from_nfa(glushkov_nfa(re)), {.threads = 4});
  const Dfa& searcher = engine.searcher();

  for (int trial = 0; trial < 6; ++trial) {
    std::string text;
    for (std::size_t i = 0; i < prng.pick_index(120); ++i)
      text.push_back("abxy"[prng.pick_index(4)]);
    const auto input = searcher.symbols().translate(text);
    const QueryResult serial = count_matches_serial(searcher, input);
    for (const std::size_t chunks : {1u, 3u, 7u}) {
      for (const bool convergence : {false, true}) {
        const QueryResult via_engine =
            engine.count(text, {.chunks = chunks, .convergence = convergence});
        EXPECT_EQ(via_engine.matches, serial.matches)
            << "c=" << chunks << " conv=" << convergence << " text=" << text;
        EXPECT_EQ(via_engine.died, serial.died);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace rispar
