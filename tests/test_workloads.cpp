#include "workloads/suite.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "engine/engine.hpp"

namespace rispar {
namespace {

class WorkloadCase : public ::testing::TestWithParam<int> {
 protected:
  WorkloadSpec spec_ = benchmark_suite()[static_cast<std::size_t>(GetParam())];
};

TEST_P(WorkloadCase, TextIsAMemberOfTheLanguage) {
  Prng prng(1);
  const std::string text = spec_.text(20'000, prng);
  EXPECT_GE(text.size(), 20'000u);
  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec_.regex())));
  EXPECT_TRUE(engine.accepts(text)) << spec_.name;
}

TEST_P(WorkloadCase, TextGenerationIsDeterministic) {
  Prng a(7), b(7);
  EXPECT_EQ(spec_.text(5'000, a), spec_.text(5'000, b));
}

TEST_P(WorkloadCase, ParallelAgreesWithSerialOnItsText) {
  Prng prng(2);
  const std::string text = spec_.text(30'000, prng);
  const Engine engine(Pattern::from_nfa(glushkov_nfa(spec_.regex())), {.threads = 4});
  const auto input = engine.translate(text);
  for (const Variant variant : {Variant::kDfa, Variant::kNfa, Variant::kRid})
    EXPECT_TRUE(engine.recognize(input, {.variant = variant, .chunks = 8}).accepted)
        << spec_.name << " " << variant_name(variant);
}

TEST_P(WorkloadCase, AutomataSizesArePinned) {
  // Exact regression pins for the compiled chunk automata. The winning /
  // even grouping itself is behavioural (run survival, not state counts)
  // and is asserted on transition ratios in test_integration.cpp.
  struct Pin {
    const char* name;
    int nfa, min_dfa, interface;
  };
  static constexpr Pin kPins[] = {
      {"bigdata", 5, 3, 3},     {"regexp", 9, 128, 8}, {"bible", 16, 17, 13},
      {"fasta", 32, 29, 29},    {"traffic", 102, 92, 93},
  };
  const Pattern pattern = Pattern::from_nfa(glushkov_nfa(spec_.regex()));
  for (const Pin& pin : kPins) {
    if (spec_.name != pin.name) continue;
    EXPECT_EQ(pattern.nfa().num_states(), pin.nfa) << spec_.name;
    EXPECT_EQ(pattern.min_dfa().num_states(), pin.min_dfa) << spec_.name;
    EXPECT_EQ(pattern.ridfa().initial_count(), pin.interface) << spec_.name;
    // The reduced interface is never larger than the NFA (Sect. 3.4).
    EXPECT_LE(pattern.ridfa().initial_count(), pattern.nfa().num_states());
    return;
  }
  FAIL() << "no pin for workload " << spec_.name;
}

INSTANTIATE_TEST_SUITE_P(AllFive, WorkloadCase, ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return benchmark_suite()[static_cast<std::size_t>(
                                                        info.param)]
                               .name;
                         });

TEST(Workloads, SuiteNamesMatchTable1) {
  const auto suite = benchmark_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "bigdata");
  EXPECT_EQ(suite[1].name, "regexp");
  EXPECT_EQ(suite[2].name, "bible");
  EXPECT_EQ(suite[3].name, "fasta");
  EXPECT_EQ(suite[4].name, "traffic");
}

TEST(Workloads, RegexpFamilyScalesExponentially) {
  const Pattern k4 = Pattern::from_nfa(glushkov_nfa(regexp_workload(4).regex()));
  const Pattern k6 = Pattern::from_nfa(glushkov_nfa(regexp_workload(6).regex()));
  EXPECT_EQ(k4.min_dfa().num_states(), 1 << 5);
  EXPECT_EQ(k6.min_dfa().num_states(), 1 << 7);
  EXPECT_EQ(k4.ridfa().initial_count(), 6);
  EXPECT_EQ(k6.ridfa().initial_count(), 8);
}

TEST(Workloads, TrafficNfaSizeNearTable1) {
  const Nfa nfa = glushkov_nfa(traffic_workload().regex());
  EXPECT_GE(nfa.num_states(), 80);
  EXPECT_LE(nfa.num_states(), 130);  // Tab. 1 reports 101
}

TEST(Workloads, PaperBytesRecorded) {
  for (const auto& spec : benchmark_suite()) EXPECT_GT(spec.paper_bytes, 0u) << spec.name;
}

}  // namespace
}  // namespace rispar
