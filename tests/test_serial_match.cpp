#include "core/serial_match.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "automata/thompson.hpp"
#include "core/interface_min.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"

namespace rispar {
namespace {

TEST(SerialMatch, DfaCountsOneTransitionPerSymbol) {
  const Dfa dfa = testing::fig2_dfa();
  const MatchResult result = serial_match(dfa, std::vector<Symbol>{1, 0, 1, 0, 0, 0});
  EXPECT_TRUE(result.accepted);  // "babaaa" ∈ L (Fig. 2 example)
  EXPECT_EQ(result.transitions, 6u);
}

TEST(SerialMatch, DfaDeadRunStopsCounting) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  dfa.add_state(true);
  dfa.set_initial(0);
  dfa.set_transition(0, 0, 0);  // only 'a' survives
  const MatchResult result = serial_match(dfa, std::vector<Symbol>{0, 0, 1, 0, 0});
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.transitions, 2u);  // died at the 'b'
}

TEST(SerialMatch, DfaEmptyInput) {
  const Dfa dfa = testing::fig2_dfa();
  const MatchResult result = serial_match(dfa, std::vector<Symbol>{});
  EXPECT_FALSE(result.accepted);  // q0 not final
  EXPECT_EQ(result.transitions, 0u);
}

TEST(SerialMatch, NfaCountsEdgeTraversals) {
  // Fig. 1 NFA on chunk "aab" from state 0:
  //   a: 0->1 (1 edge); a: 1->{0,1} (2 edges); b: 1->{0,2} (2 edges) = 5.
  const Nfa nfa = testing::fig1_nfa();
  const MatchResult result = serial_match(nfa, std::vector<Symbol>{0, 0, 1});
  EXPECT_EQ(result.transitions, 5u);
  EXPECT_TRUE(result.accepted);  // {0,2} contains final 2
}

TEST(SerialMatch, NfaWithEpsilonAccepts) {
  const Nfa nfa = thompson_nfa(parse_regex("a*b"));
  EXPECT_TRUE(serial_match(nfa, std::string("aab")).accepted);
  EXPECT_FALSE(serial_match(nfa, std::string("aa")).accepted);
  EXPECT_TRUE(serial_match(nfa, std::string("b")).accepted);
}

TEST(SerialMatch, RidfaBehavesLikeDfa) {
  const Nfa nfa = testing::fig1_nfa();
  const Ridfa ridfa = build_ridfa(nfa);
  const auto input = testing::fig1_string();
  const MatchResult result = serial_match(ridfa, input);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.transitions, input.size());  // deterministic: n transitions
}

TEST(SerialMatch, ByteOverloadsUseSymbolMap) {
  const Nfa nfa = glushkov_nfa(parse_regex("(ab)*"));
  const Dfa dfa = minimize_dfa(determinize(nfa));
  const Ridfa ridfa = build_minimized_ridfa(nfa);
  for (const std::string text : {"", "ab", "abab", "aba", "ba", "xy"}) {
    const bool expected = serial_match(nfa, text).accepted;
    EXPECT_EQ(serial_match(dfa, text).accepted, expected) << text;
    EXPECT_EQ(serial_match(ridfa, text).accepted, expected) << text;
  }
}

TEST(SerialMatch, ForeignSymbolKillsDeterministicRun) {
  const Dfa dfa = testing::fig2_dfa();
  const MatchResult result =
      serial_match(dfa, std::vector<Symbol>{0, SymbolMap::kUnmapped, 0});
  EXPECT_FALSE(result.accepted);
}

TEST(RunDfaSpan, AccumulatesAcrossCalls) {
  const Dfa dfa = testing::fig2_dfa();
  const std::vector<Symbol> input{1, 0, 1};
  std::uint64_t transitions = 0;
  State state = run_dfa_span(dfa, dfa.initial(), input.data(), 2, transitions);
  state = run_dfa_span(dfa, state, input.data() + 2, 1, transitions);
  EXPECT_EQ(transitions, 3u);
  EXPECT_EQ(state, 0);  // b a b -> q0
}

}  // namespace
}  // namespace rispar
