#include "automata/subset.hpp"

#include <gtest/gtest.h>

#include "automata/glushkov.hpp"
#include "automata/nfa_ops.hpp"
#include "automata/minimize.hpp"
#include "automata/random_nfa.hpp"
#include "automata/thompson.hpp"
#include "helpers.hpp"
#include "regex/parser.hpp"
#include "regex/printer.hpp"
#include "regex/random_regex.hpp"

namespace rispar {
namespace {

TEST(Determinize, ResultIsDeterministicAndEquivalent) {
  const Nfa nfa = testing::fig1_nfa();
  const Dfa dfa = determinize(nfa);
  // Membership agreement on all words up to length 6.
  std::vector<Symbol> word;
  std::function<void(std::size_t)> rec = [&](std::size_t depth) {
    EXPECT_EQ(dfa.accepts(word), nfa_accepts(nfa, word));
    if (depth == 6) return;
    for (Symbol a = 0; a < 3; ++a) {
      word.push_back(a);
      rec(depth + 1);
      word.pop_back();
    }
  };
  rec(0);
}

TEST(Determinize, Fig1DfaHasFourStates) {
  // The minimal DFA of Fig. 1 has states {0, 1, 01, 02}; the one-shot
  // powerset from {0} reaches exactly those four.
  const Dfa dfa = determinize(testing::fig1_nfa());
  EXPECT_EQ(dfa.num_states(), 4);
}

TEST(Determinize, ContentsAreSubsetLabels) {
  std::vector<std::vector<State>> contents;
  const Dfa dfa = determinize(testing::fig1_nfa(), &contents);
  ASSERT_EQ(contents.size(), static_cast<std::size_t>(dfa.num_states()));
  EXPECT_EQ(contents[static_cast<std::size_t>(dfa.initial())],
            (std::vector<State>{0}));
  // Finality of a subset == it contains NFA state 2.
  const Nfa nfa = testing::fig1_nfa();
  for (State s = 0; s < dfa.num_states(); ++s) {
    const bool has_final = std::find(contents[static_cast<std::size_t>(s)].begin(),
                                     contents[static_cast<std::size_t>(s)].end(),
                                     2) != contents[static_cast<std::size_t>(s)].end();
    EXPECT_EQ(dfa.is_final(s), has_final);
  }
}

TEST(Determinize, HandlesEpsilonInput) {
  const Nfa thompson = thompson_nfa(parse_regex("(a|b)*abb"));
  const Dfa dfa = determinize(thompson);
  EXPECT_TRUE(dfa.accepts(std::string("abb")));
  EXPECT_TRUE(dfa.accepts(std::string("babb")));
  EXPECT_FALSE(dfa.accepts(std::string("bb")));
}

TEST(SubsetConstruction, IncrementalSeedingSharesSubsets) {
  // Seeding {q0} then {q1}... must intern shared successor subsets once:
  // total states equal the union, not the sum, of the per-seed machines.
  const Nfa nfa = testing::fig1_nfa();
  SubsetConstruction construction(nfa);
  construction.add_seed_singleton(0);
  construction.run();
  const std::int32_t after_q0 = construction.num_states();
  construction.add_seed_singleton(1);
  construction.run();
  const std::int32_t after_q1 = construction.num_states();
  construction.add_seed_singleton(2);
  construction.run();
  const std::int32_t after_q2 = construction.num_states();

  EXPECT_EQ(after_q0, 4);  // N(0) = {0, 1, 01, 02}
  EXPECT_EQ(after_q1, 4);  // {1} already present — nothing added
  EXPECT_EQ(after_q2, 5);  // N(2) adds only {2} (paper Fig. 3)
}

TEST(SubsetConstruction, SeedIdsAreStable) {
  const Nfa nfa = testing::fig1_nfa();
  SubsetConstruction construction(nfa);
  const State id0 = construction.add_seed_singleton(0);
  construction.run();
  EXPECT_EQ(construction.add_seed_singleton(0), id0);  // re-intern is a no-op
}

TEST(SubsetConstruction, TransitionsMatchNfaReach) {
  Prng prng(404);
  const Nfa nfa = random_nfa(prng);
  SubsetConstruction construction(nfa);
  const State seed = construction.add_seed_singleton(nfa.initial());
  construction.run();
  // For a random word, stepping the subset machine equals nfa_reach.
  for (int trial = 0; trial < 20; ++trial) {
    const auto word = testing::random_word(prng, nfa.num_symbols(), 8);
    State state = seed;
    for (const Symbol symbol : word) {
      if (state == kDeadState) break;
      state = construction.transition(state, symbol);
    }
    Bitset start(static_cast<std::size_t>(nfa.num_states()));
    start.set(static_cast<std::size_t>(nfa.initial()));
    const Bitset reached = nfa_reach(nfa, start, word);
    if (state == kDeadState) {
      EXPECT_TRUE(reached.empty());
    } else {
      EXPECT_EQ(construction.contents(state), reached);
    }
  }
}

class DeterminizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminizeProperty, AgreesWithNfaOnRandomWords) {
  Prng prng(GetParam());
  RandomNfaConfig config;
  config.num_states = 8 + static_cast<std::int32_t>(prng.pick_index(30));
  config.num_symbols = 2 + static_cast<std::int32_t>(prng.pick_index(3));
  const Nfa nfa = random_nfa(prng, config);
  const Dfa dfa = determinize(nfa);
  for (int trial = 0; trial < 40; ++trial) {
    const auto word =
        testing::random_word(prng, nfa.num_symbols(), prng.pick_index(20));
    EXPECT_EQ(dfa.accepts(word), nfa_accepts(nfa, word));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminizeProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(Determinize, ExponentialFamily) {
  // [ab]*a[ab]{k}: the minimal DFA needs 2^(k+1) states (it must remember
  // the 'a' positions among the last k+1 symbols). The raw powerset carries
  // one extra transient (the short-prefix start state).
  for (const int k : {2, 4, 6}) {
    const Nfa nfa = glushkov_nfa(
        parse_regex("[ab]*a[ab]{" + std::to_string(k) + "}"));
    const Dfa dfa = determinize(nfa);
    EXPECT_EQ(dfa.num_states(), (1 << (k + 1)) + 1) << "k = " << k;
    EXPECT_EQ(minimize_dfa(dfa).num_states(), 1 << (k + 1)) << "k = " << k;
  }
}

}  // namespace
}  // namespace rispar
