// Microbenchmarks of the position-emitting finding path (ISSUE 3): the
// find_matches kernel against the counting kernel it extends, across
// (convergence × kernel implementation), plus PatternSet multi-pattern
// serving of one text.
//
// Unless the caller passes --benchmark_out, results are also written as
// machine-readable JSON to BENCH_find_all.json in the working directory,
// so CI and successive PRs can track the serving-path throughput
// trajectory next to BENCH_chunk_kernels.json (see docs/perf.md).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "benchmark_json_main.hpp"
#include "common.hpp"
#include "engine/engine.hpp"
#include "engine/pattern_set.hpp"
#include "parallel/match_count.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace rispar;

struct FindFixture {
  Pattern pattern;
  std::string text;
  std::vector<Symbol> input;  ///< translated with the searcher's map
  ThreadPool pool;

  FindFixture(const char* regex, std::size_t bytes = 1u << 20)
      : pattern(Pattern::compile(regex)), pool(4) {
    Prng prng(stable_hash("find_all"));
    text = bible_workload().text(bytes, prng);
    input = pattern.searcher().symbols().translate(text);
  }
};

FindFixture& fixture() {
  static FindFixture f("<h3>");
  return f;
}

using rispar::bench::kernel_from_range;

QueryOptions options_from_args(const benchmark::State& state) {
  QueryOptions options;
  options.chunks = static_cast<std::size_t>(state.range(0));
  options.convergence = state.range(1) != 0;
  options.kernel = kernel_from_range(state.range(2));
  return options;
}

std::string label_from_args(const benchmark::State& state) {
  std::string label = "c=" + std::to_string(state.range(0));
  label += state.range(1) ? "/convergent" : "/independent";
  label += std::string("/") + kernel_name(kernel_from_range(state.range(2)));
  return label;
}

// The tentpole path: positioned occurrences over the Σ*p searcher. Args:
// (chunks, convergence, kernel).
void BM_FindMatches(benchmark::State& state) {
  FindFixture& f = fixture();
  const QueryOptions options = options_from_args(state);
  for (auto _ : state) {
    const QueryResult result =
        find_matches(f.pattern.searcher(), f.input, f.pool, options);
    benchmark::DoNotOptimize(result.positions.size());
  }
  state.SetLabel(label_from_args(state));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.input.size()));
}
BENCHMARK(BM_FindMatches)
    ->Args({1, 0, 1})
    ->Args({8, 0, 0})
    ->Args({8, 0, 1})
    ->Args({8, 0, 2})
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({8, 1, 2})
    ->Args({32, 1, 1})
    ->Args({32, 1, 2})
    ->Unit(benchmark::kMillisecond);

// Exact-begin resolution layered on the same scan (ISSUE 9): every joined
// hit additionally walks the cached reverse DFA backwards from its end to
// the leftmost start. New series — no baseline in earlier BENCH files, so
// bench_compare.py reports it as "new" rather than gating it; the expected
// cost over BM_FindMatches is the per-hit backward walk, bounded by
// match density × backward distance to the resolution floor (small for
// separator-sound patterns like this literal). Args: (chunks, convergence,
// kernel).
void BM_FindMatchesExactBegin(benchmark::State& state) {
  FindFixture& f = fixture();
  const ReverseBegins& reverse = f.pattern.reverse_begins();  // cached, unpaid
  QueryOptions options = options_from_args(state);
  options.begin_mode = BeginMode::kExact;
  for (auto _ : state) {
    const QueryResult result = find_matches(f.pattern.searcher(), f.input,
                                            f.pool, options, 0, nullptr, &reverse);
    benchmark::DoNotOptimize(result.positions.size());
  }
  state.SetLabel(label_from_args(state) + "/exact");
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.input.size()));
}
BENCHMARK(BM_FindMatchesExactBegin)
    ->Args({1, 0, 1})
    ->Args({8, 0, 1})
    ->Args({8, 1, 1})
    ->Args({32, 1, 1})
    ->Unit(benchmark::kMillisecond);

// What positions cost over bare counting on the identical scan. Args as
// above.
void BM_CountMatchesBaseline(benchmark::State& state) {
  FindFixture& f = fixture();
  QueryOptions options = options_from_args(state);
  options.kernel = DetKernel::kFused;  // counting has no kernel knob
  for (auto _ : state) {
    const QueryResult result =
        count_matches(f.pattern.searcher(), f.input, f.pool, options);
    benchmark::DoNotOptimize(result.matches);
  }
  state.SetLabel("c=" + std::to_string(state.range(0)) +
                 (state.range(1) ? "/convergent" : "/independent"));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.input.size()));
}
BENCHMARK(BM_CountMatchesBaseline)
    ->Args({8, 0, 1})
    ->Args({8, 1, 1})
    ->Unit(benchmark::kMillisecond);

// Multi-pattern serving: N patterns, one text, one pool — the PatternSet
// text×pattern fan-out. Arg: chunks per scan.
void BM_PatternSetFind(benchmark::State& state) {
  static const PatternSet set =
      PatternSet::compile({"<h3>", "section", "the"}, {.threads = 4});
  const FindFixture& f = fixture();
  QueryOptions options;
  options.chunks = static_cast<std::size_t>(state.range(0));
  options.convergence = true;
  for (auto _ : state) {
    const QueryResult result = set.find(f.text, options);
    benchmark::DoNotOptimize(result.matches);
  }
  state.SetLabel("3 patterns, c=" + std::to_string(state.range(0)));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.text.size()));
}
BENCHMARK(BM_PatternSetFind)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rispar::bench::run_benchmarks_with_default_out(
      argc, argv, "BENCH_find_all.json");
}
