// Extension bench — the RI-DFA vs the speculation-free SFA [25] the paper
// positions itself against (Sect. 1): construction size/time and
// reach-phase transition counts on the five benchmarks. The expected
// picture: the SFA eliminates speculation entirely (exactly n transitions)
// but its construction explodes on the DFA-explosion languages, while the
// RI-DFA stays near the NFA size and already removes most speculation.
#include <cstdio>
#include <iostream>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "common.hpp"
#include "core/interface_min.hpp"
#include "core/sfa.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace rispar;
using namespace rispar::bench;

int main(int argc, char** argv) {
  Cli cli("sfa_comparison", "extension: RI-DFA vs speculation-free SFA");
  cli.add_option("chunks", "32", "chunk count");
  cli.add_option("bytes", "262144", "text bytes per benchmark");
  cli.add_option("k", "6", "regexp family parameter k");
  cli.add_option("seed", "21", "text generation seed");
  cli.add_option("sfa-budget", "65536", "max SFA states before giving up");
  if (!cli.parse(argc, argv)) return 0;

  const auto chunks = static_cast<std::size_t>(cli.get_int("chunks"));
  const auto bytes = static_cast<std::size_t>(cli.get_int("bytes"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto budget = static_cast<std::int32_t>(cli.get_int("sfa-budget"));
  ThreadPool pool;

  std::printf("=== Extension: SFA vs RI-DFA (SFA state budget %d) ===\n\n", budget);

  Table table({"benchmark", "DFA states", "RI-DFA states", "SFA states",
               "SFA build (ms)", "RID transitions", "SFA transitions"});
  for (const auto& spec : benchmark_suite(static_cast<int>(cli.get_int("k")))) {
    const Nfa nfa = glushkov_nfa(spec.regex());
    const Dfa min_dfa = minimize_dfa(determinize(nfa));
    const Ridfa ridfa = build_minimized_ridfa(nfa);

    Stopwatch sfa_clock;
    const auto sfa = try_build_sfa(min_dfa, budget);
    const double sfa_ms = sfa_clock.millis();

    Prng prng(seed ^ stable_hash(spec.name));
    const auto input = nfa.symbols().translate(spec.text(bytes, prng));
    const QueryOptions options{.chunks = chunks};
    const auto rid_stats = RidDevice(ridfa).recognize(input, pool, options);

    std::string sfa_states = "EXPLODED";
    std::string sfa_trans = "n/a";
    if (sfa.has_value()) {
      sfa_states = Table::cell(static_cast<std::int64_t>(sfa->num_states()));
      const auto sfa_stats = SfaDevice(*sfa, min_dfa).recognize(input, pool, options);
      sfa_trans = Table::cell(sfa_stats.transitions);
      if (!sfa_stats.accepted || !rid_stats.accepted)
        std::fprintf(stderr, "WARNING: %s decision mismatch\n", spec.name.c_str());
    }
    table.add_row({spec.name,
                   Table::cell(static_cast<std::int64_t>(min_dfa.num_states())),
                   Table::cell(static_cast<std::int64_t>(ridfa.num_states())), sfa_states,
                   Table::cell(sfa_ms, 2), Table::cell(rid_stats.transitions),
                   sfa_trans});
  }
  table.render(std::cout);

  std::puts("\nreading: SFA transitions equal the text length exactly (zero");
  std::puts("speculation) wherever the SFA fits, but its state count and build");
  std::puts("time grow far past the DFA's (traffic: ~90x states, ~500x build),");
  std::puts("the paper's argument for the RI-DFA middle ground. Curiously the");
  std::puts("[ab]*a[ab]{k} family's SFA collapses (mappings depend only on the");
  std::puts("last k+1 symbols) — explosion is about structure, not DFA size.");
  return 0;
}
