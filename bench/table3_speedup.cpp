// Table 3 — for every benchmark at maximum (scaled) text size: the speedup
// of RID over the DFA and NFA variants (ratio of execution times at the
// same chunk count) and the corresponding transition ratios.
//
// The paper uses 58 threads on a 64-core machine; the default here keeps
// the paper's c = 58 chunks (oversubscribed on smaller hosts — the ratios
// compare like against like, so the grouping survives).
#include <cstdio>
#include <iostream>
#include <thread>

#include "common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace rispar;
using namespace rispar::bench;

int main(int argc, char** argv) {
  Cli cli("table3_speedup", "Tab. 3: speedup of RID vs the DFA and NFA variants");
  cli.add_option("threads", "58", "chunk/thread count (paper: 58)");
  cli.add_option("scale", "1.0", "text-size scale factor");
  cli.add_option("k", "6", "regexp family parameter k");
  cli.add_option("seed", "3", "text generation seed");
  cli.add_option("min-seconds", "0.25", "measurement budget per variant");
  if (!cli.parse(argc, argv)) return 0;

  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const double scale = cli.get_double("scale");
  const double budget = cli.get_double("min-seconds");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("=== Table 3: %zu threads (host has %u hardware threads) ===\n\n",
              threads, std::thread::hardware_concurrency());

  Table table({"benchmark", "group", "DFA/RID speedup", "NFA/RID speedup",
               "DFA/RID transitions", "NFA/RID transitions", "text (MB)"});

  for (const auto& spec : benchmark_suite(static_cast<int>(cli.get_int("k")))) {
    const std::size_t bytes = scaled_bytes(spec.paper_bytes, scale);
    const Prepared prepared(spec, bytes, seed, static_cast<unsigned>(threads));
    const QueryOptions rid_options{.variant = Variant::kRid, .chunks = threads};
    const QueryOptions dfa_options{.variant = Variant::kDfa, .chunks = threads};
    const QueryOptions nfa_options{.variant = Variant::kNfa, .chunks = threads};

    const double rid_time = timed_recognition(prepared, rid_options, budget);
    const double dfa_time = timed_recognition(prepared, dfa_options, budget);
    const double nfa_time = timed_recognition(prepared, nfa_options, budget);

    const auto dfa_trans = transitions_of(prepared, dfa_options);
    const auto nfa_trans = transitions_of(prepared, nfa_options);
    const auto rid_trans = transitions_of(prepared, rid_options);

    table.add_row(
        {spec.name, spec.winning ? "winning" : "even",
         Table::ratio(dfa_time, rid_time), Table::ratio(nfa_time, rid_time),
         Table::ratio(static_cast<double>(dfa_trans), static_cast<double>(rid_trans)),
         Table::ratio(static_cast<double>(nfa_trans), static_cast<double>(rid_trans)),
         Table::cell(static_cast<double>(prepared.input.size()) / (1 << 20), 2)});
  }
  table.render(std::cout);

  std::puts("\npaper (Tab. 3): bigdata 1.01/73.2, regexp 6.31/56.6, bible 3.07/84.2,");
  std::puts("fasta 0.94/38.9, traffic 0.97/109.6 (DFA/RID and NFA/RID speedups);");
  std::puts("expected shape: even group ~1, winning group >1, NFA always >>1.");
  return 0;
}
