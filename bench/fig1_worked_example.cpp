// Reprints the paper's Fig. 1 worked example: the NFA / min-DFA / RI-DFA
// transition totals (14 / 15 / 9) for the string "aabcab" split into two
// chunks. Serves as a smoke test that the repository's counting conventions
// match the paper exactly.
#include <cstdio>
#include <iostream>

#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "core/interface_min.hpp"
#include "parallel/csdpa.hpp"
#include "util/table.hpp"

using namespace rispar;

namespace {

// The Fig. 1 NFA (see tests/helpers.hpp for the reconstruction notes).
Nfa fig1_nfa() {
  Nfa nfa = Nfa::with_identity_alphabet(3);
  for (int s = 0; s < 3; ++s) nfa.add_state();
  nfa.set_initial(0);
  nfa.set_final(2);
  nfa.add_edge(0, 0, 1);
  nfa.add_edge(0, 2, 1);
  nfa.add_edge(1, 0, 0);
  nfa.add_edge(1, 0, 1);
  nfa.add_edge(1, 1, 0);
  nfa.add_edge(1, 1, 2);
  nfa.add_edge(1, 2, 0);
  nfa.add_edge(2, 1, 1);
  return nfa;
}

}  // namespace

int main() {
  std::puts("=== Fig. 1 worked example: \"aabcab\" over {a,b,c}, c = 2 chunks ===\n");

  const Nfa nfa = fig1_nfa();
  const Dfa min_dfa = minimize_dfa(determinize(nfa));
  const Ridfa ridfa = build_ridfa(nfa);

  ThreadPool pool(2);
  const std::vector<Symbol> input{0, 0, 1, 2, 0, 1};  // a a b c a b
  const QueryOptions options{.chunks = 2};

  const QueryResult dfa_stats = DfaDevice(min_dfa).recognize(input, pool, options);
  const QueryResult nfa_stats = NfaDevice(nfa).recognize(input, pool, options);
  const QueryResult rid_stats = RidDevice(ridfa).recognize(input, pool, options);

  Table table({"chunk automaton", "states", "initial states", "transitions",
               "accepted", "paper says"});
  table.add_row({"min DFA (classic)",
                 Table::cell(static_cast<std::int64_t>(min_dfa.num_states())),
                 Table::cell(static_cast<std::int64_t>(min_dfa.num_states())),
                 Table::cell(dfa_stats.transitions),
                 dfa_stats.accepted ? "yes" : "no", "15"});
  table.add_row({"NFA (classic optimized)",
                 Table::cell(static_cast<std::int64_t>(nfa.num_states())),
                 Table::cell(static_cast<std::int64_t>(nfa.num_states())),
                 Table::cell(nfa_stats.transitions),
                 nfa_stats.accepted ? "yes" : "no", "14"});
  table.add_row({"RI-DFA (new method)",
                 Table::cell(static_cast<std::int64_t>(ridfa.num_states())),
                 Table::cell(static_cast<std::int64_t>(ridfa.initial_count())),
                 Table::cell(rid_stats.transitions),
                 rid_stats.accepted ? "yes" : "no", "9"});
  table.render(std::cout);

  std::puts("\nSerial DFA executes exactly n = 6 transitions; everything above");
  std::puts("n is speculation overhead, minimal for the RI-DFA chunk automaton.");
  return 0;
}
