// Microbenchmarks of the streaming-find path (ISSUE 4): a positions
// StreamSession fed window by window against the one-shot find_matches
// scan of the same text, across window size × chunk fan-out ×
// (convergence, kernel). The interesting trade-off is window sizing: each
// window pays one serialized join plus, for every chunk past the first,
// speculation from all searcher states — small windows amortize badly,
// large windows delay emission (docs/perf.md, "Streaming find").
//
// Unless the caller passes --benchmark_out, results are also written as
// machine-readable JSON to BENCH_stream_find.json in the working
// directory, so CI and successive PRs can track the streaming-serving
// trajectory next to BENCH_chunk_kernels.json and BENCH_find_all.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "benchmark_json_main.hpp"
#include "common.hpp"
#include "engine/engine.hpp"
#include "engine/pattern_set.hpp"
#include "parallel/match_count.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace rispar;

struct StreamFixture {
  Engine engine;
  std::string text;

  StreamFixture(const char* regex, std::size_t bytes = 1u << 20)
      : engine(Pattern::compile(regex), {.threads = 4}) {
    Prng prng(stable_hash("stream_find"));
    text = bible_workload().text(bytes, prng);
    (void)engine.searcher();  // pay the lazy build outside the timed loop
  }
};

StreamFixture& fixture() {
  static StreamFixture f("<h3>");
  return f;
}

// The tentpole path: a positions session fed in windows, matches drained
// through a sink (nothing accumulates). Args: (window KiB, chunks,
// convergence, fused).
void BM_StreamFind(benchmark::State& state) {
  StreamFixture& f = fixture();
  QueryOptions options;
  options.positions = true;
  options.chunks = static_cast<std::size_t>(state.range(1));
  options.convergence = state.range(2) != 0;
  options.kernel = rispar::bench::kernel_from_range(state.range(3));
  const std::size_t window = static_cast<std::size_t>(state.range(0)) << 10;

  for (auto _ : state) {
    StreamSession stream = f.engine.stream(options);
    std::uint64_t sum = 0;
    const MatchSink sink = [&](const Match& m) { sum += m.end; };
    for (std::size_t offset = 0; offset < f.text.size(); offset += window)
      stream.feed(std::string_view(f.text)
                      .substr(offset, std::min(window, f.text.size() - offset)),
                  sink);
    benchmark::DoNotOptimize(sum);
    benchmark::DoNotOptimize(stream.matches());
  }
  state.SetLabel("w=" + std::to_string(state.range(0)) + "KiB/c=" +
                 std::to_string(state.range(1)) +
                 (state.range(2) ? "/convergent" : "/independent") +
                 "/" + kernel_name(options.kernel));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * f.text.size()));
}
BENCHMARK(BM_StreamFind)
    ->Args({4, 1, 0, 1})
    ->Args({64, 1, 0, 1})
    ->Args({64, 8, 0, 1})
    ->Args({64, 8, 0, 0})
    ->Args({64, 8, 0, 2})
    ->Args({64, 8, 1, 1})
    ->Args({64, 8, 1, 2})
    ->Args({256, 8, 0, 1})
    ->Args({256, 8, 1, 1})
    ->Unit(benchmark::kMillisecond);

// What window-by-window feeding costs over the one-shot scan of the same
// text (the no-streaming upper bound). Args: (chunks, convergence, fused).
void BM_OneShotFindBaseline(benchmark::State& state) {
  StreamFixture& f = fixture();
  QueryOptions options;
  options.chunks = static_cast<std::size_t>(state.range(0));
  options.convergence = state.range(1) != 0;
  options.kernel = state.range(2) != 0 ? DetKernel::kFused : DetKernel::kReference;
  const Dfa& searcher = f.engine.searcher();
  const std::vector<Symbol> input = searcher.symbols().translate(f.text);
  for (auto _ : state) {
    const QueryResult result =
        find_matches(searcher, input, f.engine.pool(), options);
    benchmark::DoNotOptimize(result.positions.size());
  }
  state.SetLabel("c=" + std::to_string(state.range(0)) +
                 (state.range(1) ? "/convergent" : "/independent") +
                 (state.range(2) ? "/fused" : "/reference"));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * input.size()));
}
BENCHMARK(BM_OneShotFindBaseline)
    ->Args({1, 0, 1})
    ->Args({8, 0, 1})
    ->Args({8, 1, 1})
    ->Unit(benchmark::kMillisecond);

// Streaming exact begins (ISSUE 9): the same windowed feed with
// begin_mode = kExact — each window's hits resolve through the reverse DFA
// and the carry retains the history tail between windows. New series (no
// baseline → bench_compare.py reports "new", not gated); expected overhead
// over BM_StreamFind is the per-hit backward walk plus the history
// bookkeeping, both small for separator-sound patterns. Args: (window KiB,
// chunks).
void BM_StreamFindExactBegin(benchmark::State& state) {
  StreamFixture& f = fixture();
  QueryOptions options;
  options.positions = true;
  options.begin_mode = BeginMode::kExact;
  options.chunks = static_cast<std::size_t>(state.range(1));
  const std::size_t window = static_cast<std::size_t>(state.range(0)) << 10;
  for (auto _ : state) {
    StreamSession stream = f.engine.stream(options);
    std::uint64_t sum = 0;
    const MatchSink sink = [&](const Match& m) { sum += m.begin; };
    for (std::size_t offset = 0; offset < f.text.size(); offset += window)
      stream.feed(std::string_view(f.text)
                      .substr(offset, std::min(window, f.text.size() - offset)),
                  sink);
    benchmark::DoNotOptimize(sum);
  }
  state.SetLabel("w=" + std::to_string(state.range(0)) + "KiB/c=" +
                 std::to_string(state.range(1)) + "/exact");
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * f.text.size()));
}
BENCHMARK(BM_StreamFindExactBegin)
    ->Args({64, 1})
    ->Args({64, 8})
    ->Args({256, 8})
    ->Unit(benchmark::kMillisecond);

// Multi-pattern streaming (ISSUE 9): one feed, N searcher carries, merged
// tagged emission — against N× the single-pattern cost. New series (no
// baseline → not gated). Args: (window KiB, chunks, exact).
void BM_MultiStreamFind(benchmark::State& state) {
  static const PatternSet set =
      PatternSet::compile({"<h3>", "section", "the"}, {.threads = 4});
  StreamFixture& f = fixture();
  QueryOptions options;
  options.chunks = static_cast<std::size_t>(state.range(1));
  if (state.range(2) != 0) options.begin_mode = BeginMode::kExact;
  const std::size_t window = static_cast<std::size_t>(state.range(0)) << 10;
  for (auto _ : state) {
    MultiStreamSession session = set.stream_find(options);
    std::uint64_t sum = 0;
    const MatchSink sink = [&](const Match& m) { sum += m.end + m.pattern_id; };
    for (std::size_t offset = 0; offset < f.text.size(); offset += window)
      session.feed(std::string_view(f.text)
                       .substr(offset, std::min(window, f.text.size() - offset)),
                   sink);
    benchmark::DoNotOptimize(sum);
    benchmark::DoNotOptimize(session.matches());
  }
  state.SetLabel("3 patterns, w=" + std::to_string(state.range(0)) + "KiB/c=" +
                 std::to_string(state.range(1)) +
                 (state.range(2) ? "/exact" : "/separator"));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * f.text.size()));
}
BENCHMARK(BM_MultiStreamFind)
    ->Args({64, 1, 0})
    ->Args({64, 1, 1})
    ->Args({64, 8, 0})
    ->Unit(benchmark::kMillisecond);

// The buffered drain shape (feed + take_matches per window) against the
// sink shape above — what the convenience costs. Arg: window KiB.
void BM_StreamFindTakeMatches(benchmark::State& state) {
  StreamFixture& f = fixture();
  QueryOptions options;
  options.positions = true;
  const std::size_t window = static_cast<std::size_t>(state.range(0)) << 10;
  for (auto _ : state) {
    StreamSession stream = f.engine.stream(options);
    std::size_t taken = 0;
    for (std::size_t offset = 0; offset < f.text.size(); offset += window) {
      stream.feed(std::string_view(f.text)
                      .substr(offset, std::min(window, f.text.size() - offset)));
      taken += stream.take_matches().size();
    }
    benchmark::DoNotOptimize(taken);
  }
  state.SetLabel("w=" + std::to_string(state.range(0)) + "KiB/take_matches");
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * f.text.size()));
}
BENCHMARK(BM_StreamFindTakeMatches)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rispar::bench::run_benchmarks_with_default_out(
      argc, argv, "BENCH_stream_find.json");
}
