// Microbenchmarks of the reach-phase kernels: speculative deterministic
// runs (independent vs convergent) and the NFA frontier kernel, on one
// chunk of each benchmark group's representative.
#include <benchmark/benchmark.h>

#include "automata/glushkov.hpp"
#include "parallel/ca_run.hpp"
#include "parallel/recognizer.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace rispar;

struct ChunkFixture {
  LanguageEngines engines;
  std::vector<Symbol> chunk;
  std::vector<State> dfa_starts;
  std::vector<State> nfa_starts;

  explicit ChunkFixture(const WorkloadSpec& spec, std::size_t bytes = 1u << 16)
      : engines(LanguageEngines::from_nfa(glushkov_nfa(spec.regex()))),
        chunk([&] {
          Prng prng(stable_hash(spec.name) ^ 0xc0ffee);
          return engines.translate(spec.text(bytes, prng));
        }()) {
    for (State s = 0; s < engines.min_dfa().num_states(); ++s) dfa_starts.push_back(s);
    for (State s = 0; s < engines.nfa().num_states(); ++s) nfa_starts.push_back(s);
  }
};

const ChunkFixture& bible_fixture() {
  static const ChunkFixture fixture(bible_workload());
  return fixture;
}
const ChunkFixture& traffic_fixture() {
  static const ChunkFixture fixture(traffic_workload());
  return fixture;
}

void BM_DetKernelAllStarts_Winning(benchmark::State& state) {
  const ChunkFixture& f = bible_fixture();
  const DetChunkOptions options{.convergence = state.range(0) != 0};
  for (auto _ : state) {
    const DetChunkResult result =
        run_chunk_det(f.engines.min_dfa(), f.chunk, f.dfa_starts, options);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetLabel(state.range(0) ? "convergent" : "independent");
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_DetKernelAllStarts_Winning)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_DetKernelAllStarts_Even(benchmark::State& state) {
  const ChunkFixture& f = traffic_fixture();
  const DetChunkOptions options{.convergence = state.range(0) != 0};
  for (auto _ : state) {
    const DetChunkResult result =
        run_chunk_det(f.engines.min_dfa(), f.chunk, f.dfa_starts, options);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetLabel(state.range(0) ? "convergent" : "independent");
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_DetKernelAllStarts_Even)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RidKernelInterfaceStarts(benchmark::State& state) {
  const ChunkFixture& f = bible_fixture();
  for (auto _ : state) {
    const DetChunkResult result = run_chunk_det(
        f.engines.ridfa().dfa(), f.chunk, f.engines.ridfa().initial_states());
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_RidKernelInterfaceStarts)->Unit(benchmark::kMillisecond);

void BM_NfaKernelAllStarts(benchmark::State& state) {
  const ChunkFixture& f = traffic_fixture();
  for (auto _ : state) {
    const NfaChunkResult result = run_chunk_nfa(f.engines.nfa(), f.chunk, f.nfa_starts);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_NfaKernelAllStarts)->Unit(benchmark::kMillisecond);

void BM_SingleDfaRun(benchmark::State& state) {
  // The non-speculative baseline: one run over the chunk.
  const ChunkFixture& f = bible_fixture();
  const std::vector<State> one{f.engines.min_dfa().initial()};
  for (auto _ : state) {
    const DetChunkResult result = run_chunk_det(f.engines.min_dfa(), f.chunk, one);
    benchmark::DoNotOptimize(result.transitions);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_SingleDfaRun)->Unit(benchmark::kMillisecond);

}  // namespace
