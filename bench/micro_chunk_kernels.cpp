// Microbenchmarks of the reach-phase kernels: speculative deterministic
// runs (fused vs reference implementation, independent vs convergent) and
// the NFA frontier kernel, on one chunk of each benchmark group's
// representative.
//
// Unless the caller passes --benchmark_out, results are also written as
// machine-readable JSON to BENCH_chunk_kernels.json in the working
// directory, so CI and successive PRs can track the kernel throughput
// trajectory (see docs/perf.md).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "benchmark_json_main.hpp"
#include "common.hpp"
#include "automata/glushkov.hpp"
#include "parallel/ca_run.hpp"
#include "engine/pattern.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace rispar;

struct ChunkFixture {
  Pattern pattern;
  std::vector<Symbol> chunk;
  std::vector<State> dfa_starts;
  std::vector<State> nfa_starts;

  explicit ChunkFixture(const WorkloadSpec& spec, std::size_t bytes = 1u << 16)
      : pattern(Pattern::from_nfa(glushkov_nfa(spec.regex()))),
        chunk([&] {
          Prng prng(stable_hash(spec.name) ^ 0xc0ffee);
          return pattern.translate(spec.text(bytes, prng));
        }()) {
    for (State s = 0; s < pattern.min_dfa().num_states(); ++s) dfa_starts.push_back(s);
    for (State s = 0; s < pattern.nfa().num_states(); ++s) nfa_starts.push_back(s);
  }
};

const ChunkFixture& bible_fixture() {
  static const ChunkFixture fixture(bible_workload());
  return fixture;
}
const ChunkFixture& traffic_fixture() {
  static const ChunkFixture fixture(traffic_workload());
  return fixture;
}

using rispar::bench::kernel_from_range;

DetChunkOptions options_from_args(const benchmark::State& state) {
  return DetChunkOptions{.convergence = state.range(0) != 0,
                         .kernel = kernel_from_range(state.range(1))};
}

std::string label_from_args(const benchmark::State& state) {
  std::string label = state.range(0) ? "convergent" : "independent";
  label += std::string("/") + kernel_name(kernel_from_range(state.range(1)));
  return label;
}

// The acceptance-criterion shape: >= 16 speculative starts over a 64 KiB
// chunk (bible's minimal DFA has 17 states). Args: (convergence, kernel).
void BM_DetKernelAllStarts_Winning(benchmark::State& state) {
  const ChunkFixture& f = bible_fixture();
  const DetChunkOptions options = options_from_args(state);
  for (auto _ : state) {
    const DetChunkResult result =
        run_chunk_det(f.pattern.min_dfa(), f.chunk, f.dfa_starts, options);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetLabel(label_from_args(state));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_DetKernelAllStarts_Winning)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Unit(benchmark::kMillisecond);

void BM_DetKernelAllStarts_Even(benchmark::State& state) {
  const ChunkFixture& f = traffic_fixture();
  const DetChunkOptions options = options_from_args(state);
  for (auto _ : state) {
    const DetChunkResult result =
        run_chunk_det(f.pattern.min_dfa(), f.chunk, f.dfa_starts, options);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetLabel(label_from_args(state));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_DetKernelAllStarts_Even)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Unit(benchmark::kMillisecond);

void BM_RidKernelInterfaceStarts(benchmark::State& state) {
  const ChunkFixture& f = bible_fixture();
  const DetChunkOptions options{.kernel = kernel_from_range(state.range(0))};
  for (auto _ : state) {
    const DetChunkResult result = run_chunk_det(
        f.pattern.ridfa().dfa(), f.chunk, f.pattern.ridfa().initial_states(), options);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetLabel(kernel_name(kernel_from_range(state.range(0))));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_RidKernelInterfaceStarts)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Gather-vs-scalar sweep across the three table widths: synthetic cycle
// DFAs sized to force u8 / u16 / i32 packing, 64 speculative starts that
// all survive a 64 KiB chunk — the pure many-live-runs shape where the
// per-symbol advance is everything and the vector gather has the most to
// win. Cycle steps preserve start distinctness, so the convergent rows
// keep every group live too (no collapse to the shared scalar tail).
// Args: (width: 0=u8 1=u16 2=i32, kernel: 1=fused 2=simd, convergence).
Dfa cycle_dfa(std::int32_t n) {
  Dfa dfa = Dfa::with_identity_alphabet(2);
  for (std::int32_t s = 0; s < n; ++s) dfa.add_state(s == n - 1);
  dfa.set_initial(0);
  for (std::int32_t s = 0; s < n; ++s) dfa.set_transition(s, 0, (s + 1) % n);
  dfa.set_transition(0, 1, 0);  // symbol 1 is dead everywhere else
  return dfa;
}

void BM_GatherWidthSweep(benchmark::State& state) {
  static const Dfa u8_dfa = cycle_dfa(200);
  static const Dfa u16_dfa = cycle_dfa(4000);
  static const Dfa i32_dfa = cycle_dfa(70000);
  const Dfa& dfa =
      state.range(0) == 0 ? u8_dfa : (state.range(0) == 1 ? u16_dfa : i32_dfa);
  static const std::vector<Symbol> chunk(1u << 16, 0);  // every run survives
  std::vector<State> starts;
  Prng prng(7);
  for (int i = 0; i < 64; ++i)
    starts.push_back(static_cast<State>(
        prng.pick_index(static_cast<std::size_t>(dfa.num_states()))));
  const DetChunkOptions options{.convergence = state.range(2) != 0,
                                .kernel = kernel_from_range(state.range(1))};
  for (auto _ : state) {
    const DetChunkResult result = run_chunk_det(dfa, chunk, starts, options);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  const char* width = state.range(0) == 0 ? "u8" : (state.range(0) == 1 ? "u16" : "i32");
  state.SetLabel(std::string(width) + (state.range(2) ? "/convergent/" : "/") +
                 kernel_name(kernel_from_range(state.range(1))));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * chunk.size()));
}
BENCHMARK(BM_GatherWidthSweep)
    ->Args({0, 1, 0})
    ->Args({0, 2, 0})
    ->Args({1, 1, 0})
    ->Args({1, 2, 0})
    ->Args({2, 1, 0})
    ->Args({2, 2, 0})
    ->Args({0, 1, 1})
    ->Args({0, 2, 1})
    ->Args({1, 1, 1})
    ->Args({1, 2, 1})
    ->Unit(benchmark::kMillisecond);

// Governance-overhead series (the deadline_checkpoint rows of
// BENCH_chunk_kernels.json, guarded by CI's bench-compare gate): the same
// all-starts chunk run with an ACTIVE governor — a generous 1 h deadline
// that makes every stride poll take the real clock-read path but never
// trips — against the ungoverned baseline. The poll amortizes over
// kGovernorStride symbols (util/governance.hpp), so the governed rows must
// stay within the documented <2% of their baselines (docs/perf.md,
// "Checkpoint polling granularity"). Args: (kernel, governed).
void BM_DeadlineCheckpoint(benchmark::State& state) {
  const ChunkFixture& f = bible_fixture();
  static const QueryGovernor governor(std::chrono::hours(1), CancelToken{});
  DetChunkOptions options{.kernel = kernel_from_range(state.range(0))};
  if (state.range(1) != 0) options.governor = &governor;
  for (auto _ : state) {
    const DetChunkResult result =
        run_chunk_det(f.pattern.min_dfa(), f.chunk, f.dfa_starts, options);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetLabel(std::string(kernel_name(kernel_from_range(state.range(0)))) +
                 (state.range(1) ? "/governed" : "/baseline"));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_DeadlineCheckpoint)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Unit(benchmark::kMillisecond);

void BM_NfaKernelAllStarts(benchmark::State& state) {
  const ChunkFixture& f = traffic_fixture();
  for (auto _ : state) {
    const NfaChunkResult result = run_chunk_nfa(f.pattern.nfa(), f.chunk, f.nfa_starts);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_NfaKernelAllStarts)->Unit(benchmark::kMillisecond);

void BM_SingleDfaRun(benchmark::State& state) {
  // The non-speculative baseline: one run over the chunk.
  const ChunkFixture& f = bible_fixture();
  const std::vector<State> one{f.pattern.min_dfa().initial()};
  for (auto _ : state) {
    const DetChunkResult result = run_chunk_det(f.pattern.min_dfa(), f.chunk, one);
    benchmark::DoNotOptimize(result.transitions);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_SingleDfaRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rispar::bench::run_benchmarks_with_default_out(
      argc, argv, "BENCH_chunk_kernels.json");
}
