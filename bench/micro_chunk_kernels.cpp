// Microbenchmarks of the reach-phase kernels: speculative deterministic
// runs (fused vs reference implementation, independent vs convergent) and
// the NFA frontier kernel, on one chunk of each benchmark group's
// representative.
//
// Unless the caller passes --benchmark_out, results are also written as
// machine-readable JSON to BENCH_chunk_kernels.json in the working
// directory, so CI and successive PRs can track the kernel throughput
// trajectory (see docs/perf.md).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "benchmark_json_main.hpp"
#include "automata/glushkov.hpp"
#include "parallel/ca_run.hpp"
#include "engine/pattern.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace rispar;

struct ChunkFixture {
  Pattern pattern;
  std::vector<Symbol> chunk;
  std::vector<State> dfa_starts;
  std::vector<State> nfa_starts;

  explicit ChunkFixture(const WorkloadSpec& spec, std::size_t bytes = 1u << 16)
      : pattern(Pattern::from_nfa(glushkov_nfa(spec.regex()))),
        chunk([&] {
          Prng prng(stable_hash(spec.name) ^ 0xc0ffee);
          return pattern.translate(spec.text(bytes, prng));
        }()) {
    for (State s = 0; s < pattern.min_dfa().num_states(); ++s) dfa_starts.push_back(s);
    for (State s = 0; s < pattern.nfa().num_states(); ++s) nfa_starts.push_back(s);
  }
};

const ChunkFixture& bible_fixture() {
  static const ChunkFixture fixture(bible_workload());
  return fixture;
}
const ChunkFixture& traffic_fixture() {
  static const ChunkFixture fixture(traffic_workload());
  return fixture;
}

DetChunkOptions options_from_args(const benchmark::State& state) {
  return DetChunkOptions{
      .convergence = state.range(0) != 0,
      .kernel = state.range(1) != 0 ? DetKernel::kFused : DetKernel::kReference};
}

std::string label_from_args(const benchmark::State& state) {
  std::string label = state.range(0) ? "convergent" : "independent";
  label += state.range(1) ? "/fused" : "/reference";
  return label;
}

// The acceptance-criterion shape: >= 16 speculative starts over a 64 KiB
// chunk (bible's minimal DFA has 17 states). Args: (convergence, fused).
void BM_DetKernelAllStarts_Winning(benchmark::State& state) {
  const ChunkFixture& f = bible_fixture();
  const DetChunkOptions options = options_from_args(state);
  for (auto _ : state) {
    const DetChunkResult result =
        run_chunk_det(f.pattern.min_dfa(), f.chunk, f.dfa_starts, options);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetLabel(label_from_args(state));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_DetKernelAllStarts_Winning)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

void BM_DetKernelAllStarts_Even(benchmark::State& state) {
  const ChunkFixture& f = traffic_fixture();
  const DetChunkOptions options = options_from_args(state);
  for (auto _ : state) {
    const DetChunkResult result =
        run_chunk_det(f.pattern.min_dfa(), f.chunk, f.dfa_starts, options);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetLabel(label_from_args(state));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_DetKernelAllStarts_Even)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

void BM_RidKernelInterfaceStarts(benchmark::State& state) {
  const ChunkFixture& f = bible_fixture();
  const DetChunkOptions options{
      .kernel = state.range(0) != 0 ? DetKernel::kFused : DetKernel::kReference};
  for (auto _ : state) {
    const DetChunkResult result = run_chunk_det(
        f.pattern.ridfa().dfa(), f.chunk, f.pattern.ridfa().initial_states(), options);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetLabel(state.range(0) ? "fused" : "reference");
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_RidKernelInterfaceStarts)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_NfaKernelAllStarts(benchmark::State& state) {
  const ChunkFixture& f = traffic_fixture();
  for (auto _ : state) {
    const NfaChunkResult result = run_chunk_nfa(f.pattern.nfa(), f.chunk, f.nfa_starts);
    benchmark::DoNotOptimize(result.lambda.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_NfaKernelAllStarts)->Unit(benchmark::kMillisecond);

void BM_SingleDfaRun(benchmark::State& state) {
  // The non-speculative baseline: one run over the chunk.
  const ChunkFixture& f = bible_fixture();
  const std::vector<State> one{f.pattern.min_dfa().initial()};
  for (auto _ : state) {
    const DetChunkResult result = run_chunk_det(f.pattern.min_dfa(), f.chunk, one);
    benchmark::DoNotOptimize(result.transitions);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.chunk.size()));
}
BENCHMARK(BM_SingleDfaRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rispar::bench::run_benchmarks_with_default_out(
      argc, argv, "BENCH_chunk_kernels.json");
}
