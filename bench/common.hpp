// Shared plumbing for the table/figure drivers: workload setup, timed
// recognition, and formatting conventions. The drivers print the paper's
// tables and figure series as text so runs can be diffed and pasted into
// EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "automata/glushkov.hpp"
#include "parallel/recognizer.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"
#include "workloads/suite.hpp"

namespace rispar::bench {

/// A workload compiled to its three chunk automata plus a symbol text.
struct Prepared {
  std::string name;
  bool winning = false;
  LanguageEngines engines;
  std::vector<Symbol> input;

  Prepared(const WorkloadSpec& spec, std::size_t bytes, std::uint64_t seed)
      : name(spec.name),
        winning(spec.winning),
        engines(LanguageEngines::from_nfa(glushkov_nfa(spec.regex()))),
        input([&] {
          Prng prng(seed ^ stable_hash(spec.name));
          return engines.translate(spec.text(bytes, prng));
        }()) {}
};

/// Wall-time of one parallel recognition, averaged over enough repetitions
/// to be stable. The decision is checked on every repetition.
inline double timed_recognition(const Prepared& prepared, Variant variant,
                                ThreadPool& pool, const DeviceOptions& options,
                                double min_seconds = 0.25) {
  bool accepted = true;
  const double seconds = time_average(
      [&] {
        accepted = accepted &&
                   prepared.engines.recognize(variant, prepared.input, pool, options)
                       .accepted;
      },
      min_seconds, /*min_reps=*/2);
  if (!accepted)
    std::fprintf(stderr, "WARNING: %s rejected its own text under %s\n",
                 prepared.name.c_str(), variant_name(variant));
  return seconds;
}

/// Transition count of one recognition (deterministic, no timing).
inline std::uint64_t transitions_of(const Prepared& prepared, Variant variant,
                                    ThreadPool& pool, const DeviceOptions& options) {
  return prepared.engines.recognize(variant, prepared.input, pool, options).transitions;
}

/// Default text size: the paper's maximum for the benchmark, capped so the
/// default `for b in build/bench/*` sweep stays laptop-friendly, times the
/// user's --scale factor.
inline std::size_t scaled_bytes(std::size_t paper_bytes, double scale,
                                std::size_t cap = 2u << 20) {
  const std::size_t base = std::min(paper_bytes, cap);
  return static_cast<std::size_t>(static_cast<double>(base) * scale);
}

}  // namespace rispar::bench
