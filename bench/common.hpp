// Shared plumbing for the table/figure drivers: workload setup, timed
// recognition, and formatting conventions. The drivers print the paper's
// tables and figure series as text so runs can be diffed and pasted into
// EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "automata/glushkov.hpp"
#include "engine/engine.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"
#include "workloads/suite.hpp"

namespace rispar::bench {

/// The one benchmark-arg encoding of the kernel knob, shared by every
/// micro driver (and mirrored in the `*/reference`, `*/fused`, `*/simd`
/// series labels): 0 = reference, 1 = fused, 2 = simd.
inline DetKernel kernel_from_range(std::int64_t value) {
  if (value == 0) return DetKernel::kReference;
  return value == 2 ? DetKernel::kSimd : DetKernel::kFused;
}

/// A workload compiled to its chunk automata plus a symbol text, behind a
/// default Engine. Drivers that sweep thread counts build further Engines
/// from `prepared.engine.pattern()` — the compiled machines are shared.
struct Prepared {
  std::string name;
  bool winning = false;
  Engine engine;
  std::vector<Symbol> input;

  Prepared(const WorkloadSpec& spec, std::size_t bytes, std::uint64_t seed,
           unsigned threads = 0)
      : name(spec.name),
        winning(spec.winning),
        engine(Pattern::from_nfa(glushkov_nfa(spec.regex())),
               EngineConfig{.threads = threads}),
        input([&] {
          Prng prng(seed ^ stable_hash(spec.name));
          return engine.translate(spec.text(bytes, prng));
        }()) {}
};

/// Wall-time of one parallel recognition, averaged over enough repetitions
/// to be stable. The decision is checked on every repetition.
inline double timed_recognition(const Engine& engine, const std::string& name,
                                std::span<const Symbol> input,
                                const QueryOptions& options,
                                double min_seconds = 0.25) {
  bool accepted = true;
  const double seconds = time_average(
      [&] { accepted = accepted && engine.recognize(input, options).accepted; },
      min_seconds, /*min_reps=*/2);
  if (!accepted)
    std::fprintf(stderr, "WARNING: %s rejected its own text under %s\n",
                 name.c_str(), variant_name(options.variant));
  return seconds;
}

inline double timed_recognition(const Prepared& prepared, const QueryOptions& options,
                                double min_seconds = 0.25) {
  return timed_recognition(prepared.engine, prepared.name, prepared.input, options,
                           min_seconds);
}

/// Transition count of one recognition (deterministic, no timing).
inline std::uint64_t transitions_of(const Prepared& prepared,
                                    const QueryOptions& options) {
  return prepared.engine.recognize(prepared.input, options).transitions;
}

/// Default text size: the paper's maximum for the benchmark, capped so the
/// default `for b in build/bench/*` sweep stays laptop-friendly, times the
/// user's --scale factor.
inline std::size_t scaled_bytes(std::size_t paper_bytes, double scale,
                                std::size_t cap = 2u << 20) {
  const std::size_t base = std::min(paper_bytes, cap);
  return static_cast<std::size_t>(static_cast<double>(base) * scale);
}

}  // namespace rispar::bench
