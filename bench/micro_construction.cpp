// Microbenchmarks of the construction pipeline: RE parsing, Glushkov,
// one-shot determinization, Hopcroft minimization, RI-DFA construction and
// interface minimization — the per-stage view behind Sect. 4.5.
#include <benchmark/benchmark.h>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "core/interface_min.hpp"
#include "regex/parser.hpp"
#include "workloads/collection.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace rispar;

const Nfa& collection_sample(int index) {
  static const std::vector<Nfa> samples = [] {
    CollectionConfig config;
    std::vector<Nfa> all;
    for (int i = 0; i < 8; ++i) all.push_back(collection_nfa(config, i));
    return all;
  }();
  return samples[static_cast<std::size_t>(index % 8)];
}

void BM_ParseRegex(benchmark::State& state) {
  // Use the biggest benchmark RE (traffic) as the parsing subject; the
  // spec's regex() thunk re-parses the pattern on every call.
  const WorkloadSpec spec = traffic_workload();
  for (auto _ : state) {
    const RePtr re = spec.regex();
    benchmark::DoNotOptimize(re.get());
  }
}
BENCHMARK(BM_ParseRegex);

void BM_GlushkovConstruction(benchmark::State& state) {
  const RePtr re = traffic_workload().regex();
  for (auto _ : state) {
    const Nfa nfa = glushkov_nfa(re);
    benchmark::DoNotOptimize(nfa.num_states());
  }
}
BENCHMARK(BM_GlushkovConstruction);

void BM_Determinize(benchmark::State& state) {
  const Nfa& nfa = collection_sample(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const Dfa dfa = determinize(nfa);
    benchmark::DoNotOptimize(dfa.num_states());
  }
  state.SetLabel(std::to_string(nfa.num_states()) + " NFA states");
}
BENCHMARK(BM_Determinize)->DenseRange(0, 3);

void BM_HopcroftMinimize(benchmark::State& state) {
  const Dfa dfa = determinize(collection_sample(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    const Dfa minimal = minimize_dfa(dfa);
    benchmark::DoNotOptimize(minimal.num_states());
  }
  state.SetLabel(std::to_string(dfa.num_states()) + " DFA states");
}
BENCHMARK(BM_HopcroftMinimize)->DenseRange(0, 3);

void BM_BuildRidfa(benchmark::State& state) {
  const Nfa& nfa = collection_sample(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const Ridfa ridfa = build_ridfa(nfa);
    benchmark::DoNotOptimize(ridfa.num_states());
  }
  state.SetLabel(std::to_string(nfa.num_states()) + " NFA states");
}
BENCHMARK(BM_BuildRidfa)->DenseRange(0, 3);

void BM_InterfaceMinimization(benchmark::State& state) {
  const Nfa& nfa = collection_sample(static_cast<int>(state.range(0)));
  const Ridfa base = build_ridfa(nfa);
  for (auto _ : state) {
    Ridfa copy = base;
    const InterfaceMinStats stats = minimize_interface(copy);
    benchmark::DoNotOptimize(stats.initial_after);
  }
  state.SetLabel(std::to_string(base.num_states()) + " RI-DFA states");
}
BENCHMARK(BM_InterfaceMinimization)->DenseRange(0, 3);

void BM_RegexpFamilyExplosion(benchmark::State& state) {
  // Determinization cost on the exponential family, k = range(0).
  const WorkloadSpec spec = regexp_workload(static_cast<int>(state.range(0)));
  const Nfa nfa = glushkov_nfa(spec.regex());
  for (auto _ : state) {
    const Dfa dfa = determinize(nfa);
    benchmark::DoNotOptimize(dfa.num_states());
  }
  state.SetLabel("k=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RegexpFamilyExplosion)->DenseRange(6, 12, 2);

}  // namespace
