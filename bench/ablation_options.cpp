// Ablation — the design choices DESIGN.md calls out:
//   (1) interface minimization (Sect. 3.4) on/off: initial-state counts and
//       RID transition counts on the five benchmarks;
//   (2) run-convergence in the deterministic chunk kernels (the Mytkowicz-
//       style optimization the paper lists as compatible, Sect. 5): its
//       effect on DFA-variant and RID transition counts.
#include <cstdio>
#include <iostream>

#include "automata/glushkov.hpp"
#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "common.hpp"
#include "core/interface_min.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace rispar;
using namespace rispar::bench;

int main(int argc, char** argv) {
  Cli cli("ablation_options", "ablations: interface minimization, run convergence");
  cli.add_option("chunks", "32", "chunk count");
  cli.add_option("bytes", "262144", "text bytes per benchmark");
  cli.add_option("k", "6", "regexp family parameter k");
  cli.add_option("seed", "12", "text generation seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto chunks = static_cast<std::size_t>(cli.get_int("chunks"));
  const auto bytes = static_cast<std::size_t>(cli.get_int("bytes"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  ThreadPool pool;

  std::printf("=== Ablation 1: interface minimization (Sect. 3.4) ===\n\n");
  Table ablation1({"benchmark", "initials (raw)", "initials (min)", "downgraded",
                   "RID transitions (raw)", "RID transitions (min)"});
  for (const auto& spec : benchmark_suite(static_cast<int>(cli.get_int("k")))) {
    const Nfa nfa = glushkov_nfa(spec.regex());
    Ridfa raw = build_ridfa(nfa);
    Ridfa minimized = build_ridfa(nfa);
    const InterfaceMinStats stats = minimize_interface(minimized);

    Prng prng(seed ^ stable_hash(spec.name));
    const auto input = nfa.symbols().translate(spec.text(bytes, prng));
    const QueryOptions options{.chunks = chunks};
    const auto raw_stats = RidDevice(raw).recognize(input, pool, options);
    const auto min_stats = RidDevice(minimized).recognize(input, pool, options);

    ablation1.add_row({spec.name,
                       Table::cell(static_cast<std::int64_t>(raw.initial_count())),
                       Table::cell(static_cast<std::int64_t>(minimized.initial_count())),
                       Table::cell(static_cast<std::int64_t>(stats.downgraded)),
                       Table::cell(raw_stats.transitions),
                       Table::cell(min_stats.transitions)});
  }
  ablation1.render(std::cout);

  std::printf("\n=== Ablation 2: run convergence in the reach kernels ===\n\n");
  Table ablation2({"benchmark", "DFA trans (indep)", "DFA trans (converge)",
                   "RID trans (indep)", "RID trans (converge)"});
  for (const auto& spec : benchmark_suite(static_cast<int>(cli.get_int("k")))) {
    const Prepared prepared(spec, bytes, seed);
    ablation2.add_row(
        {spec.name,
         Table::cell(transitions_of(
             prepared, {.variant = Variant::kDfa, .chunks = chunks})),
         Table::cell(transitions_of(prepared, {.variant = Variant::kDfa,
                                               .chunks = chunks,
                                               .convergence = true})),
         Table::cell(transitions_of(
             prepared, {.variant = Variant::kRid, .chunks = chunks})),
         Table::cell(transitions_of(prepared, {.variant = Variant::kRid,
                                               .chunks = chunks,
                                               .convergence = true}))});
  }
  ablation2.render(std::cout);

  std::printf("\n=== Ablation 3: look-back speculation for the DFA variant "
              "(Sect. 5 / [28]) ===\n\n");
  Table ablation3({"benchmark", "DFA trans (plain)", "DFA trans (lookback 16)",
                   "DFA trans (lookback 64)", "RID trans"});
  for (const auto& spec : benchmark_suite(static_cast<int>(cli.get_int("k")))) {
    const Prepared prepared(spec, bytes, seed);
    ablation3.add_row(
        {spec.name,
         Table::cell(transitions_of(
             prepared, {.variant = Variant::kDfa, .chunks = chunks})),
         Table::cell(transitions_of(
             prepared, {.variant = Variant::kDfa, .chunks = chunks, .lookback = 16})),
         Table::cell(transitions_of(
             prepared, {.variant = Variant::kDfa, .chunks = chunks, .lookback = 64})),
         Table::cell(transitions_of(
             prepared, {.variant = Variant::kRid, .chunks = chunks}))});
  }
  ablation3.render(std::cout);

  std::puts("\nreading: interface minimization removes starts wholesale; convergence");
  std::puts("merges surviving runs and mostly helps the DFA variant (whose runs");
  std::puts("rarely die on the winning benchmarks); look-back prunes DFA starts");
  std::puts("where the window disambiguates the boundary (regexp collapses to one");
  std::puts("candidate) but keeps residual overhead on bible, where several title-");
  std::puts("tracking states remain live candidates — RID needs no tuning knob.");
  return 0;
}
