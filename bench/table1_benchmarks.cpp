// Table 1 — the benchmark inventory: for each workload, the NFA size (the
// paper's "n. of states" column), the derived machines, and the maximum
// text length. Prints next to the paper's values for eyeballing.
#include <cstdio>
#include <iostream>

#include "automata/glushkov.hpp"
#include "engine/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/suite.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  Cli cli("table1_benchmarks", "Tab. 1: benchmark inventory");
  cli.add_option("k", "6", "regexp family parameter k");
  if (!cli.parse(argc, argv)) return 0;

  std::puts("=== Table 1: benchmarks ===\n");
  Table table({"name", "group", "NFA states", "paper NFA", "min DFA", "RI-DFA",
               "interface", "max text (paper)"});
  const char* paper_sizes[] = {"5", "k+2", "16", "29", "101"};
  int row = 0;
  for (const auto& spec : benchmark_suite(static_cast<int>(cli.get_int("k")))) {
    const Pattern pattern = Pattern::from_nfa(glushkov_nfa(spec.regex()));
    char text_size[32];
    std::snprintf(text_size, sizeof text_size, "%.2f MB",
                  static_cast<double>(spec.paper_bytes) / (1 << 20));
    table.add_row({spec.name, spec.winning ? "winning" : "even",
                   Table::cell(static_cast<std::int64_t>(pattern.nfa().num_states())),
                   paper_sizes[row++],
                   Table::cell(static_cast<std::int64_t>(pattern.min_dfa().num_states())),
                   Table::cell(static_cast<std::int64_t>(pattern.ridfa().num_states())),
                   Table::cell(
                       static_cast<std::int64_t>(pattern.ridfa().initial_count())),
                   text_size});
  }
  table.render(std::cout);
  std::puts("\npaper Tab. 1 NFA sizes: bigdata 5, regexp k+1 series, bible 16,");
  std::puts("fasta 29, traffic 101; texts 13 / 6 / 4 / 0.75 / 11 MB.");
  return 0;
}
