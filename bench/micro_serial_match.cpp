// Microbenchmarks of the serial recognizers: per-byte throughput of the
// DFA, NFA and RI-DFA matchers on the paper's benchmark languages. These
// are the c = 1 baselines underlying every speedup figure.
#include <benchmark/benchmark.h>

#include "automata/glushkov.hpp"
#include "core/serial_match.hpp"
#include "engine/engine.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace rispar;

struct Fixture {
  Pattern pattern;
  std::vector<Symbol> input;

  Fixture(const WorkloadSpec& spec, std::size_t bytes)
      : pattern(Pattern::from_nfa(glushkov_nfa(spec.regex()))),
        input([&] {
          Prng prng(stable_hash(spec.name));
          return pattern.translate(spec.text(bytes, prng));
        }()) {}
};

const Fixture& fixture(int index) {
  static const std::vector<Fixture> fixtures = [] {
    std::vector<Fixture> all;
    for (const auto& spec : benchmark_suite()) all.emplace_back(spec, 1u << 18);
    return all;
  }();
  return fixtures[static_cast<std::size_t>(index)];
}

void BM_SerialDfa(benchmark::State& state) {
  const Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const MatchResult result = serial_match(f.pattern.min_dfa(), f.input);
    benchmark::DoNotOptimize(result.accepted);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.input.size()));
  state.SetLabel(benchmark_suite()[static_cast<std::size_t>(state.range(0))].name);
}
BENCHMARK(BM_SerialDfa)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_SerialRidfa(benchmark::State& state) {
  const Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const MatchResult result = serial_match(f.pattern.ridfa(), f.input);
    benchmark::DoNotOptimize(result.accepted);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.input.size()));
  state.SetLabel(benchmark_suite()[static_cast<std::size_t>(state.range(0))].name);
}
BENCHMARK(BM_SerialRidfa)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_SerialNfa(benchmark::State& state) {
  const Fixture& f = fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const MatchResult result = serial_match(f.pattern.nfa(), f.input);
    benchmark::DoNotOptimize(result.accepted);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * f.input.size()));
  state.SetLabel(benchmark_suite()[static_cast<std::size_t>(state.range(0))].name);
}
BENCHMARK(BM_SerialNfa)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

// Byte translation overhead (SymbolMap::translate).
void BM_Translate(benchmark::State& state) {
  const WorkloadSpec spec = bible_workload();
  Prng prng(1);
  const std::string text = spec.text(1u << 18, prng);
  const Pattern pattern = Pattern::from_nfa(glushkov_nfa(spec.regex()));
  for (auto _ : state) {
    const auto symbols = pattern.translate(text);
    benchmark::DoNotOptimize(symbols.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_Translate)->Unit(benchmark::kMillisecond);

}  // namespace
