// Table 2 — distribution of the collection's machines by the ratio of
//   (a) NFA states over minimal-DFA states, and
//   (b) RI-DFA initial states (after interface minimization) over
//       minimal-DFA states,
// in 0.1-wide bins, mirroring the paper's Tab. 2 (Ondrik collection; here
// the synthetic stand-in collection — see DESIGN.md).
#include <cstdio>
#include <iostream>

#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "core/interface_min.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "workloads/collection.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  Cli cli("table2_interface_reduction",
          "Tab. 2: initial-state reduction of RI-DFA vs NFA and minimal DFA");
  cli.add_option("count", "250", "number of collection automata (paper: 1084)");
  cli.add_option("seed", "20250114", "collection seed");
  cli.add_option("max-states", "220", "largest NFA in the collection");
  if (!cli.parse(argc, argv)) return 0;

  CollectionConfig config;
  config.count = static_cast<int>(cli.get_int("count"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.max_states = static_cast<std::int32_t>(cli.get_int("max-states"));

  std::printf("=== Table 2: %d machines, seed %llu ===\n\n", config.count,
              static_cast<unsigned long long>(config.seed));

  Histogram nfa_ratio(0.0, 0.1, 14);    // bins 0.0 .. 1.4
  Histogram ridfa_ratio(0.0, 0.1, 14);
  std::uint64_t total_nfa_states = 0, total_dfa_states = 0, total_ridfa_states = 0;
  Stopwatch clock;

  for (int i = 0; i < config.count; ++i) {
    const Nfa nfa = collection_nfa(config, i);
    const Dfa min_dfa = minimize_dfa(determinize(nfa));
    Ridfa ridfa = build_ridfa(nfa);
    minimize_interface(ridfa);

    total_nfa_states += static_cast<std::uint64_t>(nfa.num_states());
    total_dfa_states += static_cast<std::uint64_t>(min_dfa.num_states());
    total_ridfa_states += static_cast<std::uint64_t>(ridfa.num_states());

    const double dfa_states = static_cast<double>(min_dfa.num_states());
    nfa_ratio.add(static_cast<double>(nfa.num_states()) / dfa_states);
    ridfa_ratio.add(static_cast<double>(ridfa.initial_count()) / dfa_states);
  }

  Table table({"interval", "NFA / DFA states", "RI-DFA initials / DFA states"});
  for (std::size_t bin = 0; bin < nfa_ratio.bins(); ++bin) {
    if (nfa_ratio.bin_count(bin) == 0 && ridfa_ratio.bin_count(bin) == 0) continue;
    table.add_row({nfa_ratio.bin_label(bin), Table::cell(nfa_ratio.bin_count(bin)),
                   Table::cell(ridfa_ratio.bin_count(bin))});
  }
  table.add_row({"subtotal < 1.0", Table::cell(nfa_ratio.count_below(1.0)),
                 Table::cell(ridfa_ratio.count_below(1.0))});
  table.add_row({"subtotal >= 1.0",
                 Table::cell(nfa_ratio.total() - nfa_ratio.count_below(1.0)),
                 Table::cell(ridfa_ratio.total() - ridfa_ratio.count_below(1.0))});
  table.render(std::cout);

  const double below_nfa =
      100.0 * static_cast<double>(nfa_ratio.count_below(1.0)) / nfa_ratio.total();
  const double below_rid =
      100.0 * static_cast<double>(ridfa_ratio.count_below(1.0)) / ridfa_ratio.total();
  std::printf(
      "\nmachines with ratio < 1: NFA %.1f%% (paper: 96.4%%), RI-DFA %.1f%% "
      "(paper: 100%%)\n",
      below_nfa, below_rid);
  std::printf("state totals: NFA %llu, min DFA %llu, RI-DFA %llu\n",
              static_cast<unsigned long long>(total_nfa_states),
              static_cast<unsigned long long>(total_dfa_states),
              static_cast<unsigned long long>(total_ridfa_states));
  std::printf("elapsed: %.2f s\n", clock.seconds());
  return 0;
}
