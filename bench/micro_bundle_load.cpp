// Microbenchmarks of the zero-copy deployment path (src/bundle/): what a
// pattern costs to bring up COLD, three ways —
//   * compile: regex → machines (parse, Glushkov, subset construction,
//     minimization, RI-DFA, searcher, SFA, packing) — the price every
//     process paid before bundles;
//   * text: Pattern::deserialize of serialize() output — skips parsing and
//     DFA derivation, still rebuilds the RI-DFA and repacks lazily;
//   * mapped: Pattern::load_mapped of a .rpb bundle — validates checksums
//     and adopts the packed tables in place; no derivation of any kind.
// Plus the serving-shaped sweep: rispard's build_catalog cold-reloading a
// regex manifest (uncached and compile-cache-warm) against a bundle
// manifest — the reload path docs/rispard.md promises is recompile-free.
//
// Entries carry `load_ms` / `reload_ms` counters, gated lower-is-better by
// tools/bench_compare.py at the same 15% threshold as throughput
// (LOWER_IS_BETTER). After the benchmarks, main() self-checks the
// acceptance ratio — mapped load must be >= 50x faster than compile — and
// exits nonzero when it is not, so the CI leg fails loudly, not just
// slowly. Unless the caller passes --benchmark_out, results are written to
// BENCH_bundle_load.json (the fifth gated CI artifact).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "automata/glushkov.hpp"
#include "benchmark_json_main.hpp"
#include "bundle/mapped_bundle.hpp"
#include "engine/compile_cache.hpp"
#include "engine/pattern.hpp"
#include "server/catalog.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace rispar;

constexpr const char* kBundlePath = "bench_bundle_corpus.rpb";

/// Literal regexes exercising the parser-driven compile path (the five
/// paper workloads ride along as ASTs with their names as sources).
const std::vector<std::string>& corpus_regexes() {
  static const std::vector<std::string> regexes = {
      "(ab|ba)*",
      "a+b(ab)*",
      "(a|b)*a(a|b)(a|b)(a|b)",
      "(GATTACA|CCTAGG|TTTTCCCC)(A|C|G|T)*",
  };
  return regexes;
}

/// Compiles the whole corpus from scratch, forcing the lazy artifacts the
/// bundle ships (searcher + SFA) — the honest cold-start unit of every
/// series here.
std::vector<Pattern> compile_corpus() {
  std::vector<Pattern> corpus;
  for (const std::string& regex : corpus_regexes())
    corpus.push_back(Pattern::compile(regex));
  for (const WorkloadSpec& w : benchmark_suite())
    corpus.push_back(Pattern::from_nfa(glushkov_nfa(w.regex()), {}, w.name));
  for (const Pattern& p : corpus) {
    (void)p.searcher();
    (void)p.sfa();
  }
  return corpus;
}

struct BundleFixture {
  std::vector<Pattern> corpus;
  std::vector<std::string> texts;  ///< serialize() forms, one per pattern

  BundleFixture() : corpus(compile_corpus()) {
    Pattern::save_bundle_many(kBundlePath, corpus);
    for (const Pattern& p : corpus) texts.push_back(p.serialize());
  }
};

BundleFixture& fixture() {
  static BundleFixture f;
  return f;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Full compile of the corpus — the baseline every other series divides.
void BM_BundleColdCompile(benchmark::State& state) {
  fixture();  // build the bundle outside the timing
  double total_ms = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<Pattern> corpus = compile_corpus();
    benchmark::DoNotOptimize(corpus.size());
    total_ms += ms_since(start);
  }
  state.SetLabel("bundle/compile");
  state.counters["load_ms"] =
      benchmark::Counter(total_ms, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BundleColdCompile)->Unit(benchmark::kMillisecond);

// Text deserialization of every pattern (no parse, no DFA derivation, but
// RI-DFA reconstruction per pattern and lazy packing later).
void BM_BundleTextDeserialize(benchmark::State& state) {
  BundleFixture& f = fixture();
  double total_ms = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    for (const std::string& text : f.texts) {
      const Pattern p = Pattern::deserialize(text);
      benchmark::DoNotOptimize(p.min_dfa().num_states());
    }
    total_ms += ms_since(start);
  }
  state.SetLabel("bundle/text");
  state.counters["load_ms"] =
      benchmark::Counter(total_ms, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BundleTextDeserialize)->Unit(benchmark::kMillisecond);

// The tentpole: map the bundle and restore every pattern zero-copy. Each
// iteration re-opens the file — mmap + checksum validation included, the
// true cold-process cost (the page cache stays warm, as it does for a
// fleet).
void BM_BundleMappedLoad(benchmark::State& state) {
  BundleFixture& f = fixture();
  double total_ms = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto bundle = bundle::MappedBundle::open(kBundlePath);
    for (std::uint32_t i = 0; i < bundle->pattern_count(); ++i) {
      const Pattern p = Pattern::from_bundle(bundle, i);
      benchmark::DoNotOptimize(p.min_dfa().num_states());
    }
    total_ms += ms_since(start);
  }
  if (f.corpus.size() != bundle::MappedBundle::open(kBundlePath)->pattern_count())
    state.SkipWithError("bundle pattern count drifted");
  state.SetLabel("bundle/mapped");
  state.counters["load_ms"] =
      benchmark::Counter(total_ms, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BundleMappedLoad)->Unit(benchmark::kMillisecond);

// Serving-shaped cold reload: rispard's build_catalog over (0) a regex
// manifest with no cache — every reload recompiles; (1) the same manifest
// through a warm CompileCache — the unchanged-manifest reload, pure hits;
// (2) a bundle manifest — mapped loads, no compile ever.
void BM_CatalogColdReload(benchmark::State& state) {
  BundleFixture& f = fixture();
  (void)f;
  const auto pool = std::make_shared<ThreadPool>(2);
  std::vector<std::string> manifest;
  EngineConfig config;
  const char* mode = "";
  switch (state.range(0)) {
    case 0:
      manifest = corpus_regexes();
      mode = "regex";
      break;
    case 1: {
      manifest = corpus_regexes();
      config.compile_cache = std::make_shared<CompileCache>();
      // Warm it: iterations then measure steady-state reload, all hits.
      (void)rispard::build_catalog(manifest, 0, pool, config);
      mode = "regex_cached";
      break;
    }
    default:
      manifest = {kBundlePath};
      mode = "mapped";
      break;
  }
  double total_ms = 0;
  std::uint64_t generation = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto catalog =
        rispard::build_catalog(manifest, ++generation, pool, config);
    benchmark::DoNotOptimize(catalog->patterns.size());
    total_ms += ms_since(start);
  }
  state.SetLabel(std::string("bundle/catalog_reload/") + mode);
  state.counters["reload_ms"] =
      benchmark::Counter(total_ms, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CatalogColdReload)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

/// The acceptance gate: mapped load must be >= 50x faster than compile.
/// Measured directly (medians over a few repetitions) so the check cannot
/// drift from whatever subset of benchmarks a caller filtered.
int self_check() {
  fixture();  // ensure the bundle exists
  const auto compile_start = std::chrono::steady_clock::now();
  {
    std::vector<Pattern> corpus = compile_corpus();
    benchmark::DoNotOptimize(corpus.size());
  }
  const double compile_ms = ms_since(compile_start);

  double best_mapped_ms = 1e30;
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto bundle = bundle::MappedBundle::open(kBundlePath);
    for (std::uint32_t i = 0; i < bundle->pattern_count(); ++i) {
      const Pattern p = Pattern::from_bundle(bundle, i);
      benchmark::DoNotOptimize(p.min_dfa().num_states());
    }
    const double ms = ms_since(start);
    if (ms < best_mapped_ms) best_mapped_ms = ms;
  }

  const double ratio = best_mapped_ms > 0 ? compile_ms / best_mapped_ms : 1e30;
  std::fprintf(stderr,
               "bundle self-check: compile %.2f ms, mapped load %.3f ms "
               "-> %.0fx\n",
               compile_ms, best_mapped_ms, ratio);
  if (ratio < 50.0) {
    std::fprintf(stderr,
                 "bundle self-check FAILED: mapped load is only %.1fx faster "
                 "than compile (acceptance floor is 50x)\n",
                 ratio);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int rc = rispar::bench::run_benchmarks_with_default_out(
      argc, argv, "BENCH_bundle_load.json");
  if (rc != 0) return rc;
  return self_check();
}
