// Section 4.5 — construction cost of the RI-DFA vs the classic one-shot
// NFA→DFA determinization, over the whole collection. The paper reports a
// time ratio of ~20 for Ondrik (far below the worst-case |Q|×), plus the
// total state counts of the given NFAs, constructed DFAs and RI-DFAs.
#include <cstdio>

#include "automata/minimize.hpp"
#include "automata/subset.hpp"
#include "core/interface_min.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "workloads/collection.hpp"

using namespace rispar;

int main(int argc, char** argv) {
  Cli cli("sect45_construction_time",
          "Sect. 4.5: NFA->RI-DFA vs NFA->DFA construction cost");
  cli.add_option("count", "250", "number of collection automata (paper: 1084)");
  cli.add_option("seed", "20250114", "collection seed");
  cli.add_flag("with-interface-min", "include interface minimization in RI-DFA time");
  if (!cli.parse(argc, argv)) return 0;

  CollectionConfig config;
  config.count = static_cast<int>(cli.get_int("count"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bool with_min = cli.get_flag("with-interface-min");

  std::printf("=== Sect. 4.5: construction cost over %d machines ===\n\n", config.count);

  // Generate up front so generation time is excluded from both measurements.
  const std::vector<Nfa> collection = make_collection(config);

  std::uint64_t nfa_states = 0, dfa_states = 0, ridfa_states = 0, initials = 0;
  for (const Nfa& nfa : collection)
    nfa_states += static_cast<std::uint64_t>(nfa.num_states());

  Stopwatch dfa_clock;
  for (const Nfa& nfa : collection)
    dfa_states += static_cast<std::uint64_t>(determinize(nfa).num_states());
  const double dfa_seconds = dfa_clock.seconds();

  Stopwatch ridfa_clock;
  for (const Nfa& nfa : collection) {
    Ridfa ridfa = build_ridfa(nfa);
    if (with_min) minimize_interface(ridfa);
    ridfa_states += static_cast<std::uint64_t>(ridfa.num_states());
    initials += static_cast<std::uint64_t>(ridfa.initial_count());
  }
  const double ridfa_seconds = ridfa_clock.seconds();

  std::printf("NFA -> DFA     : %8.3f s   (one-shot powerset)\n", dfa_seconds);
  std::printf("NFA -> RI-DFA  : %8.3f s   (%s interface minimization)\n", ridfa_seconds,
              with_min ? "with" : "without");
  std::printf(
      "time ratio     : %8.2f     (paper: ~20 on Ondrik; worst case ~|Q|avg = %.0f)\n",
              dfa_seconds > 0 ? ridfa_seconds / dfa_seconds : 0.0,
              static_cast<double>(nfa_states) / static_cast<double>(config.count));
  std::printf(
      "\nstate totals   : NFA %llu, DFA %llu, RI-DFA %llu (paper: 2.70M / 1.49M / "
      "6.75M)\n",
              static_cast<unsigned long long>(nfa_states),
              static_cast<unsigned long long>(dfa_states),
              static_cast<unsigned long long>(ridfa_states));
  std::printf("RI-DFA initial states total: %llu (= NFA states minus delegated)\n",
              static_cast<unsigned long long>(initials));
  return 0;
}
