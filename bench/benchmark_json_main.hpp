// Shared main() body of the JSON-emitting microbenchmarks: unless the
// caller passes --benchmark_out, results are also written as
// machine-readable JSON to `json_path` in the working directory, so CI and
// successive PRs can track throughput trajectories (docs/perf.md,
// "Measurement protocol"). One definition — the per-driver mains differ
// only in the output filename.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace rispar::bench {

inline int run_benchmarks_with_default_out(int argc, char** argv,
                                           const char* json_path) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0 &&
        (argv[i][15] == '=' || argv[i][15] == '\0'))
      has_out = true;
  // Stable storage for the injected defaults (benchmark keeps pointers).
  std::string out_flag = std::string("--benchmark_out=") + json_path;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace rispar::bench
