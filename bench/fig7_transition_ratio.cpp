// Figure 7 — transition-count ratio of the DFA and NFA variants over RID
// as a function of text size, with the input cut into 32 chunks (the
// paper's mid value). Fig. 7a = bible, Fig. 7b = regexp; the even
// benchmarks are printed too (the paper omits them as "ratio ≈ 1").
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace rispar;
using namespace rispar::bench;

int main(int argc, char** argv) {
  Cli cli("fig7_transition_ratio", "Fig. 7: DFA/RID and NFA/RID transition ratios");
  cli.add_option("chunks", "32", "number of chunks (paper: 32)");
  cli.add_option("scale", "1.0", "text-size scale factor");
  cli.add_option("k", "6", "regexp family parameter k");
  cli.add_option("seed", "7", "text generation seed");
  cli.add_flag("all", "include the even benchmarks, not only bible/regexp");
  if (!cli.parse(argc, argv)) return 0;

  const auto chunks = static_cast<std::size_t>(cli.get_int("chunks"));
  const double scale = cli.get_double("scale");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  std::printf("=== Fig. 7: transition ratios vs text size (c = %zu chunks) ===\n",
              chunks);

  for (const auto& spec : benchmark_suite(static_cast<int>(cli.get_int("k")))) {
    if (!cli.get_flag("all") && !spec.winning) continue;
    std::printf("\n--- %s (%s group) ---\n", spec.name.c_str(),
                spec.winning ? "winning" : "even");
    Table table({"text size (KB)", "DFA transitions", "NFA transitions",
                 "RID transitions", "DFA/RID", "NFA/RID"});
    // Six sizes up to the (scaled) paper maximum, like the figure's x axis.
    const std::size_t max_bytes = scaled_bytes(spec.paper_bytes, scale);
    for (int step = 1; step <= 6; ++step) {
      const std::size_t bytes = max_bytes * static_cast<std::size_t>(step) / 6;
      if (bytes < 4096) continue;
      const Prepared prepared(spec, bytes, seed);
      const std::uint64_t dfa =
          transitions_of(prepared, {.variant = Variant::kDfa, .chunks = chunks});
      const std::uint64_t nfa =
          transitions_of(prepared, {.variant = Variant::kNfa, .chunks = chunks});
      const std::uint64_t rid =
          transitions_of(prepared, {.variant = Variant::kRid, .chunks = chunks});
      table.add_row(
          {Table::cell(static_cast<std::uint64_t>(prepared.input.size() / 1024)),
                     Table::cell(dfa), Table::cell(nfa), Table::cell(rid),
                     Table::ratio(static_cast<double>(dfa), static_cast<double>(rid)),
                     Table::ratio(static_cast<double>(nfa), static_cast<double>(rid))});
    }
    table.render(std::cout);
  }

  std::puts("\npaper shapes: bible DFA/RID between 8 and 9, regexp DFA/RID ~10^2,");
  std::puts("both nearly independent of text length; even group ratios ~1 +- 10%.");
  return 0;
}
