// Figure 8 — sensitivity of the RID-vs-DFA speedup for the winning
// benchmarks (bible, regexp):
//   8a/8b: speedup vs number of threads/chunks at fixed (maximum) text size;
//   8c/8d: speedup vs text size at a fixed thread count.
//
// Speedup = exec time of the DFA variant / exec time of RID at the same c.
#include <cstdio>
#include <iostream>
#include <thread>

#include "common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace rispar;
using namespace rispar::bench;

int main(int argc, char** argv) {
  Cli cli("fig8_speedup_scaling", "Fig. 8: RID vs DFA speedup scaling");
  cli.add_option("threads", "2,6,10,18,26,34,42,50,58",
                 "thread sweep for Fig. 8a/8b (paper: 2..66)");
  cli.add_option("fixed-threads", "58", "thread count for Fig. 8c/8d (paper: 58)");
  cli.add_option("scale", "1.0", "text-size scale factor");
  cli.add_option("k", "6", "regexp family parameter k");
  cli.add_option("seed", "8", "text generation seed");
  cli.add_option("min-seconds", "0.15", "measurement budget per point");
  if (!cli.parse(argc, argv)) return 0;

  const double scale = cli.get_double("scale");
  const double budget = cli.get_double("min-seconds");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto thread_sweep = cli.get_int_list("threads");
  const auto fixed_threads = static_cast<std::size_t>(cli.get_int("fixed-threads"));

  std::printf("=== Fig. 8 (host has %u hardware threads; beyond that the curve "
              "flattens) ===\n",
              std::thread::hardware_concurrency());

  const std::vector<WorkloadSpec> winning{
      bible_workload(), regexp_workload(static_cast<int>(cli.get_int("k")))};

  // --- Fig. 8a / 8b: speedup vs threads at max text size -------------------
  for (const auto& spec : winning) {
    const std::size_t bytes = scaled_bytes(spec.paper_bytes, scale);
    const Prepared prepared(spec, bytes, seed);
    std::printf("\n--- Fig. 8%c: %s, %.2f MB, speedup vs #threads ---\n",
                spec.name == "bible" ? 'a' : 'b', spec.name.c_str(),
                static_cast<double>(prepared.input.size()) / (1 << 20));
    Table table({"threads", "DFA time (ms)", "RID time (ms)", "speedup DFA/RID"});
    for (const auto threads : thread_sweep) {
      // One Engine per pool size; the compiled Pattern is shared.
      const Engine engine(prepared.engine.pattern(),
                          {.threads = static_cast<unsigned>(threads)});
      const auto chunks = static_cast<std::size_t>(threads);
      const double rid = timed_recognition(
          engine, prepared.name, prepared.input,
          {.variant = Variant::kRid, .chunks = chunks}, budget);
      const double dfa = timed_recognition(
          engine, prepared.name, prepared.input,
          {.variant = Variant::kDfa, .chunks = chunks}, budget);
      table.add_row({Table::cell(threads), Table::cell(dfa * 1e3, 3),
                     Table::cell(rid * 1e3, 3), Table::ratio(dfa, rid)});
    }
    table.render(std::cout);
  }

  // --- Fig. 8c / 8d: speedup vs text size at fixed threads -----------------
  for (const auto& spec : winning) {
    std::printf("\n--- Fig. 8%c: %s, speedup vs text size at %zu threads ---\n",
                spec.name == "bible" ? 'c' : 'd', spec.name.c_str(), fixed_threads);
    Table table({"text size (KB)", "DFA time (ms)", "RID time (ms)", "speedup DFA/RID"});
    const std::size_t max_bytes = scaled_bytes(spec.paper_bytes, scale);
    for (int step = 1; step <= 6; ++step) {
      const std::size_t bytes = max_bytes * static_cast<std::size_t>(step) / 6;
      if (bytes < 4096) continue;
      const Prepared prepared(spec, bytes, seed,
                              static_cast<unsigned>(fixed_threads));
      const double rid = timed_recognition(
          prepared, {.variant = Variant::kRid, .chunks = fixed_threads}, budget);
      const double dfa = timed_recognition(
          prepared, {.variant = Variant::kDfa, .chunks = fixed_threads}, budget);
      table.add_row(
          {Table::cell(static_cast<std::uint64_t>(prepared.input.size() / 1024)),
                     Table::cell(dfa * 1e3, 3), Table::cell(rid * 1e3, 3),
                     Table::ratio(dfa, rid)});
    }
    table.render(std::cout);
  }

  std::puts("\npaper shapes: 8a/8b speedup decreases as the fixed text is cut into");
  std::puts("more chunks; 8c/8d speedup grows with text length at fixed threads.");
  return 0;
}
